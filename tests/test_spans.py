"""Span tracer: hierarchy, clocks, bounded buffers, probe bridging, and
the Chrome-event rendering."""

import pytest

from repro.obs import (
    SpanTracer,
    bridge_probe_spans,
    spans_to_trace_events,
)
from repro.obs.probes import ProbeBus
from repro.obs.spans import CYCLES, WALL


class TestSpanTracer:
    def test_begin_end_nesting(self):
        tracer = SpanTracer()
        outer = tracer.begin("cell", key="abc")
        inner = tracer.begin("measure")
        assert inner.parent_id == outer.span_id
        tracer.end(inner)
        tracer.end(outer)
        spans = tracer.export()
        assert [s["name"] for s in spans] == ["measure", "cell"]
        assert spans[1]["attrs"] == {"key": "abc"}
        assert all(s["end"] >= s["start"] for s in spans)
        assert all(s["clock"] == WALL for s in spans)

    def test_context_manager_records_error_status(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("measure"):
                raise RuntimeError("boom")
        (span,) = tracer.export()
        assert span["status"] == "error"
        assert span["end"] is not None

    def test_end_closes_dangling_children_as_abandoned(self):
        tracer = SpanTracer()
        outer = tracer.begin("cell")
        tracer.begin("measure")          # never explicitly ended
        tracer.end(outer)
        by_name = {s["name"]: s for s in tracer.export()}
        assert by_name["measure"]["status"] == "abandoned"
        assert by_name["cell"]["status"] == "ok"
        assert tracer.current is None

    def test_end_without_open_span_raises(self):
        with pytest.raises(RuntimeError):
            SpanTracer().end()

    def test_buffer_bound_counts_drops(self):
        tracer = SpanTracer(max_spans=2)
        for i in range(5):
            tracer.add("s", float(i), float(i + 1))
        assert len(tracer.export()) == 2
        assert tracer.dropped == 3

    def test_add_attaches_to_open_span_by_default(self):
        tracer = SpanTracer()
        outer = tracer.begin("attempt")
        added = tracer.add("spawn", 1.0, 2.0)
        assert added.parent_id == outer.span_id
        explicit = tracer.add("reap", 3.0, 4.0, parent=7)
        assert explicit.parent_id == 7


class TestSpansToTraceEvents:
    def test_wall_spans_become_complete_slices(self):
        tracer = SpanTracer()
        with tracer.span("cell", key="k"):
            pass
        events = spans_to_trace_events(tracer.export(), pid=42, tid=9)
        (event,) = events
        assert event["ph"] == "X"
        assert event["pid"] == 42 and event["tid"] == 9
        assert event["name"] == "cell"
        assert event["args"]["key"] == "k"
        assert event["dur"] > 0

    def test_cycle_clock_spans_are_skipped(self):
        tracer = SpanTracer()
        tracer.add("prm", 100.0, 130.0, clock=CYCLES)
        tracer.add("wall", 1.0, 2.0)
        events = spans_to_trace_events(tracer.export(), pid=1)
        assert [e["name"] for e in events] == ["wall"]

    def test_open_spans_are_skipped(self):
        tracer = SpanTracer()
        tracer.begin("never-closed")
        # export() only holds closed spans, but a hand-built dict with
        # end=None must not crash the renderer either.
        spans = [{"name": "open", "clock": WALL, "start": 1.0,
                  "end": None}]
        assert spans_to_trace_events(spans, pid=1) == []


class TestProbeBridge:
    def test_prm_episode_becomes_cycle_span(self):
        bus = ProbeBus()
        tracer = SpanTracer()
        subs = bridge_probe_spans(tracer, bus)
        bus.probe("svr.prm_enter").emit(pc=4, time=100.0, length=16,
                                        stride=8, addr=0)
        bus.probe("svr.prm_exit").emit(cause="hslr", time=130.0,
                                       duration=30.0, instructions=10,
                                       pc=4)
        for sub in subs:
            sub.cancel()
        (span,) = tracer.export()
        assert span["name"] == "prm"
        assert span["clock"] == CYCLES
        assert span["start"] == 100.0 and span["end"] == 130.0
        assert span["attrs"]["cause"] == "hslr"
        assert span["attrs"]["length"] == 16

    def test_exit_without_enter_is_ignored(self):
        bus = ProbeBus()
        tracer = SpanTracer()
        bridge_probe_spans(tracer, bus)
        bus.probe("svr.prm_exit").emit(cause="hslr", time=130.0,
                                       duration=30.0, instructions=10,
                                       pc=4)
        assert tracer.export() == []

    def test_watchdog_becomes_error_marker(self):
        bus = ProbeBus()
        tracer = SpanTracer()
        bridge_probe_spans(tracer, bus)
        bus.probe("core.watchdog").emit(kind="cycles", cycle=5e9, pc=8)
        (span,) = tracer.export()
        assert span["name"] == "watchdog"
        assert span["status"] == "error"
        assert span["start"] == span["end"] == 5e9

    def test_cancelled_bridge_stops_recording(self):
        bus = ProbeBus()
        tracer = SpanTracer()
        subs = bridge_probe_spans(tracer, bus)
        for sub in subs:
            sub.cancel()
        bus.probe("core.watchdog").emit(kind="cycles", cycle=1.0, pc=0)
        assert tracer.export() == []
