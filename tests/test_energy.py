"""Unit tests for the energy model."""

import pytest

from repro.energy.model import EnergyBreakdown, EnergyModel, EnergyParams


def evaluate(model=None, **overrides):
    model = model or EnergyModel()
    kwargs = dict(
        core_kind="inorder", cycles=2_000_000.0, frequency_ghz=2.0,
        instructions=200_000, alu_ops=100_000, fp_ops=0, branches=20_000,
        l1_accesses=80_000, l2_accesses=10_000, dram_lines=5_000,
    )
    kwargs.update(overrides)
    return model.evaluate(**kwargs)


class TestBreakdown:
    def test_total_is_sum_of_parts(self):
        b = evaluate()
        assert b.total_j == pytest.approx(
            b.static_j + b.core_dynamic_j + b.cache_dynamic_j
            + b.dram_dynamic_j + b.technique_dynamic_j)

    def test_per_instruction_nj(self):
        b = EnergyBreakdown(static_j=2e-4)
        assert b.per_instruction_nj(200_000) == pytest.approx(1.0)

    def test_per_instruction_zero_guard(self):
        assert EnergyBreakdown(static_j=1.0).per_instruction_nj(0) == 0.0

    def test_as_dict_keys(self):
        d = evaluate().as_dict()
        assert set(d) == {"static_j", "core_dynamic_j", "cache_dynamic_j",
                          "dram_dynamic_j", "technique_dynamic_j", "total_j"}


class TestCoreKinds:
    def test_ooo_core_draws_more_power(self):
        ino = evaluate(core_kind="inorder")
        ooo = evaluate(core_kind="ooo")
        assert ooo.static_j > ino.static_j
        assert ooo.core_dynamic_j > ino.core_dynamic_j

    def test_unknown_core_kind_rejected(self):
        with pytest.raises(ValueError):
            evaluate(core_kind="vliw")

    def test_slower_run_pays_more_static(self):
        fast = evaluate(cycles=1_000_000.0)
        slow = evaluate(cycles=3_000_000.0)
        assert slow.static_j == pytest.approx(3 * fast.static_j)


class TestTechniqueCosts:
    def test_svi_ops_cost_energy(self):
        plain = evaluate()
        with_svr = evaluate(svi_ops=100_000, svr_table_accesses=50_000,
                            svr_state_kib=2.17)
        assert with_svr.technique_dynamic_j > plain.technique_dynamic_j
        assert with_svr.static_j > plain.static_j

    def test_imp_costs(self):
        plain = evaluate()
        with_imp = evaluate(imp_prefetches=50_000, imp_enabled=True)
        assert with_imp.technique_dynamic_j > 0
        assert with_imp.static_j > plain.static_j

    def test_dram_dominates_for_miss_heavy_runs(self):
        b = evaluate(dram_lines=50_000)
        assert b.dram_dynamic_j > b.core_dynamic_j


class TestCalibration:
    def test_inorder_core_power_magnitude(self):
        """Core-only power should be near the paper's 0.12 W average."""
        p = EnergyParams()
        # A memory-bound run: CPI 10 at 2 GHz.
        instrs = 100_000
        cycles = 10.0 * instrs
        seconds = cycles / 2e9
        core_j = (p.inorder_core_static_w * seconds
                  + instrs * p.inorder_instr_j + instrs * p.alu_op_j)
        watts = core_j / seconds
        assert 0.05 < watts < 0.25

    def test_ooo_core_power_magnitude(self):
        """OoO core power should be near the paper's 1.01 W average."""
        p = EnergyParams()
        instrs = 100_000
        cycles = 4.0 * instrs
        seconds = cycles / 2e9
        core_j = (p.ooo_core_static_w * seconds
                  + instrs * p.ooo_instr_j + instrs * p.alu_op_j)
        watts = core_j / seconds
        assert 0.7 < watts < 1.4

    def test_average_power_helper(self):
        model = EnergyModel()
        b = evaluate(model)
        watts = model.average_power_w(b, cycles=2_000_000.0,
                                      frequency_ghz=2.0)
        assert watts == pytest.approx(b.total_j / 1e-3)
