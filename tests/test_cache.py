"""Unit tests for the set-associative cache and MSHR pool."""

import pytest

from repro.memory.cache import Cache, MshrPool


class TestCacheBasics:
    def test_miss_then_hit(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        assert cache.lookup(10) is None
        cache.insert(10)
        assert cache.lookup(10) is not None

    def test_hit_miss_counters(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        cache.lookup(1)
        cache.insert(1)
        cache.lookup(1)
        assert cache.misses == 1 and cache.hits == 1

    def test_contains_does_not_touch_lru(self):
        cache = Cache("L1", 256, assoc=2, line_bytes=64)
        # Two lines in the same set (num_sets = 2).
        a, b = 0, 2
        cache.insert(a)
        cache.insert(b)
        assert cache.contains(a)
        cache.insert(4)  # same set: evicts LRU = a
        assert not cache.contains(a)
        assert cache.contains(b)

    def test_lookup_touch_updates_lru(self):
        cache = Cache("L1", 256, assoc=2, line_bytes=64)
        cache.insert(0)
        cache.insert(2)
        cache.lookup(0)          # 0 becomes MRU
        cache.insert(4)          # evicts 2
        assert cache.contains(0) and not cache.contains(2)

    def test_eviction_returns_victim_address(self):
        cache = Cache("L1", 256, assoc=2, line_bytes=64)
        cache.insert(0)
        cache.insert(2)
        victim = cache.insert(4)
        assert victim is not None
        assert victim[0] == 0

    def test_insert_present_line_merges_dirty(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        cache.insert(7, dirty=False)
        assert cache.insert(7, dirty=True) is None
        meta = cache.lookup(7)
        assert meta.dirty

    def test_mark_dirty(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        cache.insert(3)
        cache.mark_dirty(3)
        assert cache.lookup(3).dirty

    def test_prefetched_flag_and_origin(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        cache.insert(9, prefetched=True, origin="svr")
        meta = cache.lookup(9)
        assert meta.prefetched and meta.origin == "svr"

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache("bad", 1000, assoc=3)

    def test_num_sets(self):
        cache = Cache("L1", 64 << 10, assoc=4, line_bytes=64)
        assert cache.num_sets == 256

    def test_reset_stats_keeps_contents(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        cache.insert(5)
        cache.lookup(5)
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0
        assert cache.contains(5)

    def test_distinct_sets_do_not_conflict(self):
        cache = Cache("L1", 256, assoc=2, line_bytes=64)  # 2 sets
        cache.insert(0)
        cache.insert(1)   # other set
        cache.insert(2)
        cache.insert(3)
        assert cache.contains(1) and cache.contains(3)


class TestInsertFlagMerge:
    """Filling a present line must merge *all* flags (regression: the old
    present-line path merged only ``dirty`` and silently dropped the
    ``prefetched``/``origin`` tags of the incoming fill)."""

    def test_prefetch_onto_resident_demand_line_sets_tag(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        cache.insert(7)                                   # demand fill
        assert cache.insert(7, prefetched=True, origin="svr") is None
        meta = cache.lookup(7, count_stats=False)
        assert meta.prefetched and meta.origin == "svr"

    def test_first_prefetch_wins_origin(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        cache.insert(7, prefetched=True, origin="stride")
        cache.insert(7, prefetched=True, origin="svr")
        meta = cache.lookup(7, count_stats=False)
        assert meta.prefetched and meta.origin == "stride"

    def test_demand_fill_does_not_clear_prefetch_tag(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        cache.insert(7, prefetched=True, origin="imp")
        cache.insert(7)                                   # demand re-fill
        meta = cache.lookup(7, count_stats=False)
        assert meta.prefetched and meta.origin == "imp"

    def test_dirty_still_or_merged_alongside_tags(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        cache.insert(7, dirty=True)
        cache.insert(7, prefetched=True, origin="svr")
        meta = cache.lookup(7, count_stats=False)
        assert meta.dirty and meta.prefetched


class TestLookupCountStats:
    def test_peek_does_not_inflate_counters(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        cache.insert(3)
        cache.lookup(3, count_stats=False)        # bookkeeping peek: hit
        cache.lookup(4, count_stats=False)        # bookkeeping peek: miss
        assert cache.hits == 0 and cache.misses == 0

    def test_peek_without_touch_leaves_lru_alone(self):
        cache = Cache("L1", 256, assoc=2, line_bytes=64)  # 2 sets
        cache.insert(0)
        cache.insert(2)
        cache.lookup(0, touch=False, count_stats=False)
        cache.insert(4)                           # same set: evicts LRU = 0
        assert not cache.contains(0) and cache.contains(2)

    def test_counted_lookup_still_counts(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        cache.insert(3)
        cache.lookup(3)
        cache.lookup(4)
        assert cache.hits == 1 and cache.misses == 1


class TestLruEvictionMultiSet:
    def test_eviction_order_follows_lru_touches(self):
        cache = Cache("L1", 512, assoc=4, line_bytes=64)  # 2 sets, 4 ways
        for line in (0, 2, 4, 6):                 # all map to set 0
            cache.insert(line)
        cache.lookup(0)                           # 0 becomes MRU
        cache.lookup(4)                           # 4 becomes MRU
        victim = cache.insert(8)                  # evicts LRU = 2
        assert victim[0] == 2
        victim = cache.insert(10)                 # next LRU = 6
        assert victim[0] == 6
        assert cache.contains(0) and cache.contains(4)

    def test_victim_address_reconstruction_across_sets(self):
        # 4 sets: line -> set (line % 4), tag (line // 4).  The victim's
        # byte-line address must round-trip exactly from (tag, set).
        cache = Cache("L1", 512, assoc=2, line_bytes=64)
        assert cache.num_sets == 4
        for set_index in range(4):
            first = 100 * 4 + set_index           # arbitrary distinct tags
            second = 200 * 4 + set_index
            third = 300 * 4 + set_index
            cache.insert(first)
            cache.insert(second)
            victim = cache.insert(third)
            assert victim is not None
            assert victim[0] == first             # exact line address back
            assert victim[0] % cache.num_sets == set_index

    def test_victim_metadata_travels_with_address(self):
        cache = Cache("L1", 256, assoc=2, line_bytes=64)
        cache.insert(0, dirty=True, prefetched=True, origin="svr")
        cache.insert(2)
        victim_line, victim_meta = cache.insert(4)
        assert victim_line == 0
        assert victim_meta.dirty and victim_meta.prefetched
        assert victim_meta.origin == "svr"


class TestMshrPool:
    def test_allocate_when_free_starts_immediately(self):
        pool = MshrPool(2)
        slot, start = pool.allocate(5.0)
        assert start == 5.0

    def test_allocation_blocks_when_full(self):
        pool = MshrPool(1)
        slot, start = pool.allocate(0.0)
        pool.release(slot, 100.0)
        slot2, start2 = pool.allocate(10.0)
        assert start2 == 100.0
        assert pool.full_stalls == 1

    def test_two_entries_overlap_two_misses(self):
        pool = MshrPool(2)
        s1, t1 = pool.allocate(0.0)
        pool.release(s1, 90.0)
        s2, t2 = pool.allocate(1.0)
        assert t2 == 1.0     # second MSHR still free

    def test_would_block(self):
        pool = MshrPool(1)
        slot, _ = pool.allocate(0.0)
        pool.release(slot, 50.0)
        assert pool.would_block(10.0)
        assert not pool.would_block(60.0)

    def test_earliest_free(self):
        pool = MshrPool(2)
        s, _ = pool.allocate(0.0)
        pool.release(s, 30.0)
        assert pool.earliest_free() == 0.0   # the other slot

    def test_at_least_one_entry_required(self):
        with pytest.raises(ValueError):
            MshrPool(0)

    def test_peak_wait_recorded(self):
        pool = MshrPool(1)
        slot, _ = pool.allocate(0.0)
        pool.release(slot, 200.0)
        pool.allocate(0.0)
        assert pool.peak_wait == 200.0

    def test_slot_reuse_picks_earliest_free_lowest_index(self):
        pool = MshrPool(3)
        # All slots free at 0.0: ties break to the lowest index, so three
        # back-to-back allocations at t=0 walk 0, 1, 2 in order once each
        # is marked busy.
        s0, _ = pool.allocate(0.0)
        pool.release(s0, 100.0)
        s1, _ = pool.allocate(0.0)
        pool.release(s1, 50.0)
        s2, _ = pool.allocate(0.0)
        pool.release(s2, 80.0)
        assert (s0, s1, s2) == (0, 1, 2)
        # Next miss at t=0 must wait; it picks slot 1 (earliest free, 50.0).
        s3, start3 = pool.allocate(0.0)
        assert s3 == 1 and start3 == 50.0
        pool.release(s3, 120.0)
        # And the next picks slot 2 (free at 80.0), not slot 0 (100.0).
        s4, start4 = pool.allocate(0.0)
        assert s4 == 2 and start4 == 80.0

    def test_would_block_is_nondestructive(self):
        pool = MshrPool(2)
        s, _ = pool.allocate(0.0)
        pool.release(s, 40.0)
        # One slot busy until 40, one free: never blocks.
        assert not pool.would_block(0.0)
        s2, _ = pool.allocate(0.0)
        pool.release(s2, 60.0)
        assert pool.would_block(10.0)
        assert pool.full_stalls == 0      # probing must not count a stall
        assert pool.peak_wait == 0.0

    def test_full_stalls_accumulate(self):
        pool = MshrPool(1)
        slot, _ = pool.allocate(0.0)
        pool.release(slot, 100.0)
        s1, t1 = pool.allocate(10.0)      # waits 90
        pool.release(s1, 150.0)
        s2, t2 = pool.allocate(20.0)      # waits 130
        assert (t1, t2) == (100.0, 150.0)
        assert pool.full_stalls == 2
        assert pool.peak_wait == 130.0
