"""Unit tests for the set-associative cache and MSHR pool."""

import pytest

from repro.memory.cache import Cache, MshrPool


class TestCacheBasics:
    def test_miss_then_hit(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        assert cache.lookup(10) is None
        cache.insert(10)
        assert cache.lookup(10) is not None

    def test_hit_miss_counters(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        cache.lookup(1)
        cache.insert(1)
        cache.lookup(1)
        assert cache.misses == 1 and cache.hits == 1

    def test_contains_does_not_touch_lru(self):
        cache = Cache("L1", 256, assoc=2, line_bytes=64)
        # Two lines in the same set (num_sets = 2).
        a, b = 0, 2
        cache.insert(a)
        cache.insert(b)
        assert cache.contains(a)
        cache.insert(4)  # same set: evicts LRU = a
        assert not cache.contains(a)
        assert cache.contains(b)

    def test_lookup_touch_updates_lru(self):
        cache = Cache("L1", 256, assoc=2, line_bytes=64)
        cache.insert(0)
        cache.insert(2)
        cache.lookup(0)          # 0 becomes MRU
        cache.insert(4)          # evicts 2
        assert cache.contains(0) and not cache.contains(2)

    def test_eviction_returns_victim_address(self):
        cache = Cache("L1", 256, assoc=2, line_bytes=64)
        cache.insert(0)
        cache.insert(2)
        victim = cache.insert(4)
        assert victim is not None
        assert victim[0] == 0

    def test_insert_present_line_merges_dirty(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        cache.insert(7, dirty=False)
        assert cache.insert(7, dirty=True) is None
        meta = cache.lookup(7)
        assert meta.dirty

    def test_mark_dirty(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        cache.insert(3)
        cache.mark_dirty(3)
        assert cache.lookup(3).dirty

    def test_prefetched_flag_and_origin(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        cache.insert(9, prefetched=True, origin="svr")
        meta = cache.lookup(9)
        assert meta.prefetched and meta.origin == "svr"

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache("bad", 1000, assoc=3)

    def test_num_sets(self):
        cache = Cache("L1", 64 << 10, assoc=4, line_bytes=64)
        assert cache.num_sets == 256

    def test_reset_stats_keeps_contents(self):
        cache = Cache("L1", 1 << 12, assoc=4)
        cache.insert(5)
        cache.lookup(5)
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0
        assert cache.contains(5)

    def test_distinct_sets_do_not_conflict(self):
        cache = Cache("L1", 256, assoc=2, line_bytes=64)  # 2 sets
        cache.insert(0)
        cache.insert(1)   # other set
        cache.insert(2)
        cache.insert(3)
        assert cache.contains(1) and cache.contains(3)


class TestMshrPool:
    def test_allocate_when_free_starts_immediately(self):
        pool = MshrPool(2)
        slot, start = pool.allocate(5.0)
        assert start == 5.0

    def test_allocation_blocks_when_full(self):
        pool = MshrPool(1)
        slot, start = pool.allocate(0.0)
        pool.release(slot, 100.0)
        slot2, start2 = pool.allocate(10.0)
        assert start2 == 100.0
        assert pool.full_stalls == 1

    def test_two_entries_overlap_two_misses(self):
        pool = MshrPool(2)
        s1, t1 = pool.allocate(0.0)
        pool.release(s1, 90.0)
        s2, t2 = pool.allocate(1.0)
        assert t2 == 1.0     # second MSHR still free

    def test_would_block(self):
        pool = MshrPool(1)
        slot, _ = pool.allocate(0.0)
        pool.release(slot, 50.0)
        assert pool.would_block(10.0)
        assert not pool.would_block(60.0)

    def test_earliest_free(self):
        pool = MshrPool(2)
        s, _ = pool.allocate(0.0)
        pool.release(s, 30.0)
        assert pool.earliest_free() == 0.0   # the other slot

    def test_at_least_one_entry_required(self):
        with pytest.raises(ValueError):
            MshrPool(0)

    def test_peak_wait_recorded(self):
        pool = MshrPool(1)
        slot, _ = pool.allocate(0.0)
        pool.release(slot, 200.0)
        pool.allocate(0.0)
        assert pool.peak_wait == 200.0
