"""Tests for static taint chains (the static analogue of the SVR tracker)."""

import pytest

from repro.analysis import build_cfg, chains_for_program, taint_chain
from repro.isa.program import ProgramBuilder
from repro.isa.registers import reg_index

from conftest import gather_program


class TestGatherChain:
    @pytest.fixture(scope="class")
    def cfg(self):
        return build_cfg(gather_program(0x1000, 0x2000, 8))

    def test_chain_from_striding_seed(self, cfg):
        chain = taint_chain(cfg, 7)      # ld t2 <- idx[i]
        # t2 feeds slli(8) -> add(9) -> ld(10) -> add t5(11); the summed
        # t5 loops back into pc 11 only, so the chain stops there.
        assert {8, 9, 10, 11} <= chain.chain_pcs
        assert 7 not in chain.chain_pcs          # seed itself excluded
        assert chain.dependent_loads == (10,)
        assert chain.loop_header == 5

    def test_chain_registers(self, cfg):
        chain = taint_chain(cfg, 7)
        tainted = {reg_index(r) for r in ("t2", "t3", "t4", "t5")}
        assert tainted <= set(chain.tainted_regs)
        # Untouched prologue registers never get tainted.
        assert reg_index("a0") not in chain.tainted_regs
        assert reg_index("t0") not in chain.tainted_regs

    def test_in_loop_chain_and_srf(self, cfg):
        chain = taint_chain(cfg, 7)
        assert chain.loop_chain_pcs <= chain.chain_pcs
        assert chain.chain_length == len(chain.loop_chain_pcs)
        # SRF entries: seed dest t2 plus chain dests t3, t4, t5.
        assert chain.srf_pressure == 4

    def test_chains_for_program_seeds_at_striding_loads(self, cfg):
        chains = chains_for_program(cfg)
        assert [c.seed_pc for c in chains] == [7]

    def test_non_load_seed_rejected(self, cfg):
        with pytest.raises(ValueError):
            taint_chain(cfg, 8)


class TestPropagation:
    def test_taint_never_escapes_untainted_path(self):
        # A value computed purely from invariants stays out of the chain.
        b = ProgramBuilder("split")
        b.li("a0", 0x1000)
        b.li("t0", 0)
        b.label("loop")
        b.slli("t1", "t0", 3)
        b.add("t1", "a0", "t1")
        b.ld("t2", "t1", 0)          # pc 4: seed
        b.addi("t3", "t0", 5)        # pc 5: independent of the load
        b.add("t4", "t2", "t3")      # pc 6: mixes tainted + clean
        b.addi("t0", "t0", 1)
        b.cmp_lt("t5", "t0", "x0")
        b.bnez("t5", "loop")
        b.halt()
        chain = taint_chain(build_cfg(b.build()), 4)
        assert 5 not in chain.chain_pcs
        assert 6 in chain.chain_pcs
        assert reg_index("t3") not in chain.tainted_regs
        assert reg_index("t4") in chain.tainted_regs

    def test_store_and_branch_join_chain_without_srf(self):
        b = ProgramBuilder("stbr")
        b.li("a0", 0x1000)
        b.li("t0", 0)
        b.label("loop")
        b.slli("t1", "t0", 3)
        b.add("t1", "a0", "t1")
        b.ld("t2", "t1", 0)          # pc 4: seed
        b.st("t2", "t1", 0)          # pc 5: store of tainted value
        b.beqz("t2", "skip")         # pc 6: branch on tainted value
        b.label("skip")
        b.addi("t0", "t0", 1)
        b.cmp_lt("t3", "t0", "x0")
        b.bnez("t3", "loop")
        b.halt()
        chain = taint_chain(build_cfg(b.build()), 4)
        assert {5, 6} <= chain.chain_pcs
        # Stores/branches write no register: they cost no SRF entry.
        assert chain.srf_pressure == 1

    def test_taint_is_monotone_superset_of_single_pass(self):
        # A loop-carried tainted accumulator taints uses that appear
        # *before* the seed in pc order; the fixpoint must find them.
        b = ProgramBuilder("carry")
        b.li("a0", 0x1000)
        b.li("t5", 0)
        b.li("t0", 0)
        b.label("loop")
        b.mv("t6", "t5")             # pc 3: reads last iteration's sum
        b.slli("t1", "t0", 3)
        b.add("t1", "a0", "t1")
        b.ld("t2", "t1", 0)          # pc 6: seed
        b.add("t5", "t5", "t2")      # pc 7: accumulator
        b.addi("t0", "t0", 1)
        b.cmp_lt("t3", "t0", "x0")
        b.bnez("t3", "loop")
        b.halt()
        chain = taint_chain(build_cfg(b.build()), 6)
        assert 7 in chain.chain_pcs
        assert 3 in chain.chain_pcs          # found via the back edge
