"""Final cross-cutting checks: export consistency, string forms, and the
CLI's nested-figure rendering path."""

import pytest

from repro.__main__ import main
from repro.harness.runner import MAIN_TECHNIQUES, technique
from repro.svr.vr import VectorRunaheadUnit
from repro.workloads.registry import (
    IRREGULAR_WORKLOADS,
    SPEC_WORKLOADS,
    build_workload,
)


class TestExportConsistency:
    def test_top_level_all_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_harness_all_importable(self):
        import repro.harness as harness

        for name in harness.__all__:
            assert hasattr(harness, name), name

    def test_every_main_technique_constructs(self):
        for name in MAIN_TECHNIQUES:
            cfg = technique(name)
            assert cfg.name == name

    def test_workload_categories_consistent(self):
        for name in ("PR_KR", "BFS_TW"):
            assert build_workload(name, "tiny").category == "gap"
        for name in ("Camel", "Randacc"):
            assert build_workload(name, "tiny").category == "hpc"
        assert build_workload("leela", "tiny").category == "spec"

    def test_no_name_collisions_between_suites(self):
        assert not set(IRREGULAR_WORKLOADS) & set(SPEC_WORKLOADS)


class TestStringForms:
    def test_instruction_str_readable(self):
        from repro.isa.instructions import Instruction, Opcode

        text = str(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3))
        assert "add" in text and "x1" in text

    def test_vr_stats_reset(self):
        unit = VectorRunaheadUnit()
        unit.stats.episodes = 5
        unit.reset_stats()
        assert unit.stats.episodes == 0

    def test_multicore_mean_cpi(self):
        from repro.harness.multicore import run_multicore

        result = run_multicore(["Camel"], "inorder", scale="tiny",
                               warmup=200, measure=800)
        assert result.mean_cpi == pytest.approx(
            result.per_core[0].cpi)


class TestCliNestedFigure:
    def test_fig3_renders_through_cli(self, capsys):
        """fig3 returns {group: {core: stack}} — the CLI must flatten it."""
        # Monkeypatch to a tiny group set through the public entry point.
        from repro.harness import experiments

        original = experiments.fig3
        try:
            def tiny_fig3(scale):
                return original(scale="tiny", groups={"PR": ("PR_UR",)})

            experiments.fig3 = tiny_fig3
            from repro.__main__ import FIGURES
            FIGURES["fig3"] = experiments.fig3
            assert main(["figure", "fig3", "--scale", "tiny"]) == 0
            out = capsys.readouterr().out
            assert "PR/inorder" in out and "mem-dram" in out
        finally:
            experiments.fig3 = original
            FIGURES["fig3"] = original


class TestSpecRecipes:
    def test_sizes_are_positive_powers(self):
        from repro.workloads.spec import _SPEC_RECIPES

        for name, (archetype, size, extra) in _SPEC_RECIPES.items():
            assert size > 0 and extra > 0, name
            assert size & (size - 1) == 0, f"{name} size not a power of two"

    def test_short_archetype_trip_counts_small(self):
        from repro.workloads.spec import _SPEC_RECIPES

        for name, (archetype, size, extra) in _SPEC_RECIPES.items():
            if archetype == "short":
                assert extra <= 8, name
