"""Tests for the text assembler."""

import pytest

from repro.cores.functional import FunctionalCore
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import Opcode
from repro.memory.main_memory import MainMemory


def run_source(source, memory=None):
    memory = memory or MainMemory(capacity_bytes=1 << 20)
    program = assemble(source)
    core = FunctionalCore(program, memory)
    core.run(1_000_000)
    return core, memory


class TestParsing:
    def test_simple_program(self):
        program = assemble("""
            li t0, 5
            addi t0, t0, 2
            halt
        """)
        assert len(program) == 3
        assert program[0].op is Opcode.LI

    def test_labels_and_branches(self):
        core, _ = run_source("""
            li t0, 0
            li t1, 10
        loop:
            addi t0, t0, 1
            cmp_lt t2, t0, t1
            bnez t2, loop
            halt
        """)
        assert core.regs.read(20) == 10

    def test_comments_and_blank_lines(self):
        program = assemble("""
            # a comment line

            li a0, 1   # trailing comment
            halt
        """)
        assert len(program) == 2

    def test_hex_and_negative_immediates(self):
        core, _ = run_source("""
            li t0, 0x10
            addi t0, t0, -6
            halt
        """)
        assert core.regs.read(20) == 10

    def test_memory_operations(self):
        memory = MainMemory(capacity_bytes=1 << 20)
        addr = memory.alloc_array([41])
        core, memory = run_source(f"""
            li a0, {addr}
            ld t0, a0, 0
            addi t0, t0, 1
            st t0, a0, 8
            halt
        """, memory)
        assert memory.read_word(addr + 8) == 42

    def test_default_zero_displacement(self):
        memory = MainMemory(capacity_bytes=1 << 20)
        addr = memory.alloc_array([7])
        core, _ = run_source(f"""
            li a0, {addr}
            ld t0, a0
            halt
        """, memory)
        assert core.regs.read(20) == 7

    def test_keyword_mnemonics(self):
        core, _ = run_source("""
            li t0, 12
            li t1, 10
            and t2, t0, t1
            or  t3, t0, t1
            min t4, t0, t1
            max t5, t0, t1
            halt
        """)
        assert core.regs.read(22) == 8
        assert core.regs.read(23) == 14
        assert core.regs.read(24) == 10
        assert core.regs.read(25) == 12

    def test_label_on_same_line_as_instruction(self):
        core, _ = run_source("""
            li t0, 3
        top: addi t0, t0, -1
            bnez t0, top
            halt
        """)
        assert core.regs.read(20) == 0

    def test_roundtrip_with_disassembler(self):
        program = assemble("""
            li t0, 1
        loop:
            addi t0, t0, 1
            jmp loop
        """)
        text = program.disassemble()
        assert "loop:" in text and "-> loop" in text


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate t0, t1")

    def test_unknown_register(self):
        with pytest.raises(AssemblerError, match="unknown register"):
            assemble("li q9, 1")

    def test_bad_immediate(self):
        with pytest.raises(AssemblerError, match="expected integer"):
            assemble("li t0, banana")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects 3 operands"):
            assemble("add t0, t1")

    def test_undefined_branch_target(self):
        with pytest.raises(ValueError, match="undefined label"):
            assemble("jmp nowhere")

    def test_undefined_branch_target_carries_branch_line(self):
        source = "li t0, 1\nli t1, 2\nbnez t0, missing\nhalt"
        with pytest.raises(AssemblerError) as excinfo:
            assemble(source)
        assert excinfo.value.line_no == 3
        assert "undefined label" in str(excinfo.value)
        assert "missing" in str(excinfo.value)

    def test_duplicate_label(self):
        source = "top:\n    li t0, 1\ntop:\n    halt"
        with pytest.raises(AssemblerError) as excinfo:
            assemble(source)
        assert excinfo.value.line_no == 3
        assert "duplicate label" in str(excinfo.value)

    def test_duplicate_label_inline_form(self):
        source = "loop: li t0, 1\nloop: halt"
        with pytest.raises(AssemblerError) as excinfo:
            assemble(source)
        assert excinfo.value.line_no == 2

    def test_error_carries_line_number(self):
        try:
            assemble("li t0, 1\nbogus t1\nhalt")
        except AssemblerError as err:
            assert err.line_no == 2
        else:  # pragma: no cover
            pytest.fail("expected AssemblerError")


class TestIntegrationWithTimingCore:
    def test_assembled_gather_triggers_svr(self):
        import numpy as np
        from repro.svr.config import SVRConfig
        from conftest import make_inorder

        memory = MainMemory(capacity_bytes=1 << 22)
        rng = np.random.default_rng(3)
        idx = memory.alloc_array(
            rng.integers(0, 2048, size=512, dtype=np.int64), name="idx")
        data = memory.alloc(2048 << 6, name="data")
        program = assemble(f"""
            li a0, {idx}
            li a1, {data}
            li a2, 512
            li t0, 0
        loop:
            slli t1, t0, 3
            add  t1, a0, t1
            ld   t2, t1, 0
            slli t3, t2, 6
            add  t3, a1, t3
            ld   t4, t3, 0
            add  t5, t5, t4
            addi t0, t0, 1
            cmp_lt t6, t0, a2
            bnez t6, loop
            halt
        """)
        core, hierarchy, unit = make_inorder(program, memory,
                                             svr=SVRConfig())
        core.run(4_000)
        assert unit.stats.prm_rounds > 0
        assert hierarchy.stats.prefetches_issued["svr"] > 0
