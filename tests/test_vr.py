"""Tests for the Vector Runahead baseline on the out-of-order core."""

import pytest

from repro.harness.runner import run, technique
from repro.svr.vr import VectorRunaheadUnit


class TestTriggering:
    def test_vr_fires_on_memory_bound_workload(self):
        result = run("Camel", "vr64", scale="tiny")
        assert result.vr is not None
        assert result.vr.episodes > 0
        assert result.vr.prefetches > 0

    def test_vr_prefetch_origin_tracked(self):
        result = run("Camel", "vr64", scale="tiny")
        assert result.hierarchy.prefetches_issued["vr"] > 0

    def test_no_vr_on_plain_ooo(self):
        result = run("Camel", "ooo", scale="tiny")
        assert result.vr is None
        assert result.hierarchy.prefetches_issued["vr"] == 0

    def test_short_stalls_do_not_trigger(self):
        """ALU-bound code never fills the window behind a DRAM load."""
        result = run("namd", "vr64", scale="tiny")
        assert result.vr.episodes <= 2

    def test_cooldown_limits_episode_rate(self):
        frequent = VectorRunaheadUnit(cooldown_instructions=1)
        sparse = VectorRunaheadUnit(cooldown_instructions=1000)
        assert frequent.cooldown < sparse.cooldown  # config plumbed


class TestBehaviour:
    def test_vr_speeds_up_the_ooo_core(self):
        """The headline of the VR line of work: big-core runahead wins big
        on stride-indirect workloads."""
        plain = run("Camel", "ooo", scale="bench")
        vr = run("Camel", "vr64", scale="bench")
        assert vr.cpi < plain.cpi * 0.75

    def test_vr_never_changes_architectural_state(self):
        plain = run("NAS-IS", "ooo", scale="tiny")
        vr = run("NAS-IS", "vr64", scale="tiny")
        # Same committed work over the same window.
        assert vr.core.instructions == plain.core.instructions
        assert vr.core.loads == plain.core.loads
        assert vr.core.branches == plain.core.branches

    def test_transient_instructions_counted(self):
        result = run("Camel", "vr64", scale="tiny")
        assert result.vr.transient_instructions >= result.vr.prefetches

    def test_length_bounds_episode_depth(self):
        short = run("Camel", "vr8", scale="tiny")
        deep = run("Camel", "vr64", scale="tiny")
        assert (deep.vr.transient_instructions / max(1, deep.vr.episodes)
                > short.vr.transient_instructions / max(1, short.vr.episodes))

    def test_vr_preset_parsing(self):
        assert technique("vr").vr_length == 64
        assert technique("vr8").vr_length == 8
        assert technique("vr64").core == "ooo"


class TestPaperTradeoff:
    def test_svr_on_little_core_wins_energy(self):
        """The paper's pitch, quantified: VR's big-core speed costs energy
        that SVR's little core does not pay."""
        for w in ("Camel", "Kangr"):
            vr = run(w, "vr64", scale="bench")
            svr = run(w, "svr16", scale="bench")
            assert (svr.energy_per_instruction_nj
                    < vr.energy_per_instruction_nj), w

    def test_table1_quantified_structure(self):
        from repro.harness.experiments import table1_quantified

        out = table1_quantified(workloads=("Camel",), scale="tiny")
        assert set(out) == {"inorder", "ooo", "vr64", "svr16"}
        assert out["vr64"]["norm_ipc"] > out["ooo"]["norm_ipc"]
        assert out["inorder"]["norm_ipc"] == pytest.approx(1.0)
