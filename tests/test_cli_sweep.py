"""CLI tests for ``repro sweep`` and the resilience flags on ``figure``."""

import json

import pytest

from repro.__main__ import main


class TestSweepCommand:
    def test_basic_sweep(self, capsys):
        assert main(["sweep", "svr16", "--workloads", "Camel",
                     "--axis", "svr.srf_entries=2,8",
                     "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "svr.srf_entries" in out
        assert "FAILED" not in out

    def test_json_output(self, capsys):
        assert main(["sweep", "svr16", "--workloads", "Camel",
                     "--axis", "svr.srf_entries=2,8",
                     "--scale", "tiny", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metric"] == "ipc"
        assert len(payload["values"]) == 2
        assert payload["failures"] == []
        assert all(v["value"] is not None for v in payload["values"])

    def test_injected_fault_fails_with_summary(self, capsys):
        code = main(["sweep", "svr16", "--workloads", "Camel",
                     "--axis", "svr.srf_entries=2,8",
                     "--scale", "tiny", "--retries", "0",
                     "--inject", "Camel/*srf_entries=2*:crash"])
        assert code == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out
        assert "crash" in captured.out          # structured failure list
        assert "1 failed" in captured.err       # executor summary

    def test_resume_after_fault(self, capsys, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        argv = ["sweep", "svr16", "--workloads", "Camel",
                "--axis", "svr.srf_entries=2,8", "--scale", "tiny",
                "--retries", "0", "--journal", journal]
        assert main(argv + ["--inject", "Camel/*srf_entries=2*:crash"]) == 1
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert "FAILED" not in captured.out
        assert "from journal" in captured.err

    def test_bad_axis_path(self, capsys):
        assert main(["sweep", "svr16", "--workloads", "Camel",
                     "--axis", "svr.warp_speed=1,2",
                     "--scale", "tiny"]) == 2
        assert "unknown config field" in capsys.readouterr().err

    def test_malformed_axis(self, capsys):
        assert main(["sweep", "svr16", "--workloads", "Camel",
                     "--axis", "svr.srf_entries", "--scale", "tiny"]) == 2
        assert "--axis expects" in capsys.readouterr().err

    def test_resume_requires_journal(self, capsys):
        assert main(["sweep", "svr16", "--workloads", "Camel",
                     "--axis", "svr.srf_entries=2,8",
                     "--scale", "tiny", "--resume"]) == 2
        assert "journal" in capsys.readouterr().err

    def test_bad_inject_spec(self, capsys):
        assert main(["sweep", "svr16", "--workloads", "Camel",
                     "--axis", "svr.srf_entries=2,8",
                     "--scale", "tiny", "--inject", "Camel"]) == 2
        assert "fault spec" in capsys.readouterr().err


class TestFigureResilienceFlags:
    def test_injected_fault_partial_figure(self, capsys):
        code = main(["figure", "fig14", "--workloads", "Camel,HJ2",
                     "--scale", "tiny", "--retries", "0",
                     "--inject", "Camel/svr16:crash"])
        assert code == 1
        captured = capsys.readouterr()
        assert "Camel" in captured.out          # row rendered (as '-')
        assert "failed cell" in captured.err

    def test_flaky_fault_retries_to_success(self, capsys):
        assert main(["figure", "fig14", "--workloads", "Camel",
                     "--scale", "tiny", "--retries", "1",
                     "--inject", "Camel/svr16:flaky"]) == 0
        captured = capsys.readouterr()
        assert "failed cell" not in captured.err

    def test_figure_resume_journal(self, capsys, tmp_path):
        journal = str(tmp_path / "fig.jsonl")
        argv = ["figure", "fig14", "--workloads", "Camel", "--scale",
                "tiny", "--retries", "0", "--journal", journal]
        assert main(argv + ["--inject", "Camel/svr16:crash"]) == 1
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "H-mean" in out

    def test_jsonl_record_includes_failures(self, capsys, tmp_path):
        log = tmp_path / "runs.jsonl"
        assert main(["figure", "fig14", "--workloads", "Camel",
                     "--scale", "tiny", "--retries", "0",
                     "--inject", "Camel/svr16:crash",
                     "--jsonl", str(log)]) == 1
        capsys.readouterr()
        record = json.loads(log.read_text().splitlines()[-1])
        assert record["kind"] == "figure"
        assert record["failures"][0]["kind"] == "crash"


@pytest.mark.parametrize("timeout_s", ["1.0"])
class TestTimeoutEndToEnd:
    def test_hang_is_killed(self, capsys, timeout_s):
        code = main(["sweep", "svr16", "--workloads", "Camel",
                     "--axis", "svr.srf_entries=2,8", "--scale", "tiny",
                     "--retries", "0", "--timeout", timeout_s,
                     "--inject", "Camel/*srf_entries=2*:hang"])
        assert code == 1
        captured = capsys.readouterr()
        assert "hang" in captured.out
        assert "timeout" in captured.out
