"""Targeted tests for remaining corner paths across modules."""

import numpy as np

from repro.isa.program import ProgramBuilder
from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy
from repro.memory.main_memory import MainMemory
from repro.svr.config import SVRConfig

from conftest import make_inorder, make_memory


class TestPendingMapHygiene:
    def test_pending_map_stays_bounded(self):
        """Thousands of distinct misses must not grow the pending map
        without bound (the purge path)."""
        mem = MainMemory(capacity_bytes=1 << 24)
        hier = MemoryHierarchy(mem, MemoryConfig(stride_prefetcher=False))
        t = 0.0
        for i in range(6000):
            out = hier.load(0x10000 + i * 64, t, pc=1)
            t = out.completion + 1
        assert len(hier._pending) < 5000


class TestStoreSviPaths:
    def build_scatter(self, tainted_address: bool):
        """store with tainted address (scatter) vs tainted data only."""
        memory = make_memory()
        rng = np.random.default_rng(53)
        idx = memory.alloc_array(
            rng.integers(0, 4096, size=512, dtype=np.int64), name="idx")
        data = memory.alloc(4096 << 6, name="data")
        out = memory.alloc_zeros(1024, name="out")
        b = ProgramBuilder()
        b.li("a0", idx)
        b.li("a1", data)
        b.li("a2", out)
        b.li("a3", 512)
        b.li("t0", 0)
        b.label("loop")
        b.slli("t1", "t0", 3)
        b.add("t1", "a0", "t1")
        b.ld("t2", "t1", 0)              # striding (tainted source)
        if tainted_address:
            b.slli("t3", "t2", 6)
            b.add("t3", "a1", "t3")
            b.st("t2", "t3", 0)          # scatter: tainted address
        else:
            b.andi("t4", "t0", 1023)
            b.slli("t4", "t4", 3)
            b.add("t4", "a2", "t4")
            b.st("t2", "t4", 0)          # tainted data, untainted address
        b.addi("t0", "t0", 1)
        b.cmp_lt("t6", "t0", "a3")
        b.bnez("t6", "loop")
        b.halt()
        return b.build(), memory

    def test_scatter_stores_prefetch_their_lines(self):
        program, memory = self.build_scatter(tainted_address=True)
        core, hierarchy, unit = make_inorder(program, memory,
                                             svr=SVRConfig())
        core.run(5_000)
        assert hierarchy.stats.prefetches_issued["svr"] > 100

    def test_tainted_data_untainted_address_no_store_lanes(self):
        """Nothing to prefetch: every lane would hit the same address."""
        program, memory = self.build_scatter(tainted_address=False)
        core, hierarchy, unit = make_inorder(program, memory,
                                             svr=SVRConfig())
        core.run(5_000)
        # Only the striding index loads themselves prefetch.
        per_round = (hierarchy.stats.prefetches_issued["svr"]
                     / max(1, unit.stats.prm_rounds))
        assert per_round < 20


class TestFpChains:
    def test_fp_ops_vectorize(self):
        """NAS-CG-style fixed-point multiply inside the indirect chain."""
        memory = make_memory()
        rng = np.random.default_rng(59)
        idx = memory.alloc_array(
            rng.integers(0, 4096, size=512, dtype=np.int64), name="idx")
        data = memory.alloc(4096 << 6, name="data")
        b = ProgramBuilder()
        b.li("a0", idx)
        b.li("a1", data)
        b.li("a2", 512)
        b.li("t0", 0)
        b.label("loop")
        b.slli("t1", "t0", 3)
        b.add("t1", "a0", "t1")
        b.ld("t2", "t1", 0)
        b.slli("t3", "t2", 6)
        b.add("t3", "a1", "t3")
        b.ld("t4", "t3", 0)
        b.fmul("t5", "t4", "t4")         # FP op on tainted value
        b.fadd("t6", "t6", "t5")
        b.addi("t0", "t0", 1)
        b.cmp_lt("t7", "t0", "a2")
        b.bnez("t7", "loop")
        b.halt()
        core, hierarchy, unit = make_inorder(b.build(), memory,
                                             svr=SVRConfig())
        core.run(4_000)
        assert unit.stats.prm_rounds > 0
        assert hierarchy.stats.prefetch_useful["svr"] > 0


class TestRunnerWindows:
    def test_exact_window_sizes_respected(self):
        from repro.harness.runner import run

        result = run("Camel", "inorder", scale="tiny", warmup=321,
                     measure=789)
        assert result.core.instructions == 789

    def test_zero_warmup_allowed(self):
        from repro.harness.runner import run

        result = run("Camel", "svr16", scale="tiny", warmup=0, measure=500)
        assert result.core.instructions == 500


class TestOooCommitWidth:
    def test_narrow_commit_limits_throughput(self):
        from repro.cores.base import CoreConfig
        from conftest import make_ooo

        def build():
            memory = make_memory()
            b = ProgramBuilder()
            b.li("t8", 2000)
            b.label("loop")
            for i in range(6):
                b.addi(f"t{i}", "x0", i)
            b.addi("t8", "t8", -1)
            b.bnez("t8", "loop")
            b.halt()
            return b.build(), memory

        program, memory = build()
        core, _ = make_ooo(program, memory, core_cfg=CoreConfig(width=1))
        narrow = core.run(10_000)
        program, memory = build()
        core, _ = make_ooo(program, memory, core_cfg=CoreConfig(width=3))
        wide = core.run(10_000)
        assert wide.cycles < narrow.cycles / 1.8
