"""Tests for phase-behaviour sampling."""

import pytest

from repro.harness.phases import PhaseSample, render_phases, run_phases


class TestRunPhases:
    def test_samples_requested_windows(self):
        samples = run_phases("Camel", "svr16", scale="tiny", warmup=500,
                             windows=5, window=500)
        assert len(samples) == 5
        assert all(s.instructions == 500 for s in samples)

    def test_ipc_positive_in_every_window(self):
        samples = run_phases("Camel", "inorder", scale="tiny", warmup=500,
                             windows=4, window=500)
        assert all(s.ipc > 0 for s in samples)

    def test_svr_activity_visible(self):
        samples = run_phases("Camel", "svr16", scale="tiny", warmup=500,
                             windows=4, window=800)
        assert sum(s.svr_rounds for s in samples) > 0
        assert sum(s.svr_lanes for s in samples) > 0

    def test_plain_core_has_no_svr_fields(self):
        samples = run_phases("Camel", "inorder", scale="tiny", warmup=500,
                             windows=3, window=500)
        assert all(s.svr_rounds == 0 and not s.svr_banned for s in samples)

    def test_halting_workload_truncates(self):
        samples = run_phases("Camel", "inorder", scale="tiny", warmup=0,
                             windows=500, window=2_000)
        assert len(samples) < 500     # tiny Camel halts well before that

    def test_ooo_rejected(self):
        with pytest.raises(ValueError):
            run_phases("Camel", "ooo", scale="tiny")

    def test_svr_keeps_ipc_above_baseline_in_most_windows(self):
        base = run_phases("Camel", "inorder", scale="tiny", warmup=500,
                          windows=4, window=500)
        svr = run_phases("Camel", "svr16", scale="tiny", warmup=500,
                         windows=4, window=500)
        wins = sum(1 for b, s in zip(base, svr) if s.ipc > b.ipc)
        assert wins >= 3

    def test_cpi_property(self):
        sample = PhaseSample(0, 100, 0.5, 10, 0, 0, False)
        assert sample.cpi == 2.0
        zero = PhaseSample(0, 0, 0.0, 0, 0, 0, False)
        assert zero.cpi == 0.0


class TestRender:
    def test_render_contains_rows_and_sparkline(self):
        samples = run_phases("Camel", "svr16", scale="tiny", warmup=500,
                             windows=4, window=500)
        text = render_phases(samples)
        assert "IPC trend:" in text
        assert text.count("\n") >= 5

    def test_render_empty(self):
        assert "no samples" in render_phases([])
