"""Reproducibility: identical inputs must give bit-identical results.

A simulator that drifts between runs is useless for ablation studies;
every stochastic choice in this codebase flows from fixed seeds.
"""

import pytest

from repro.harness.runner import run
from repro.workloads.registry import build_workload


class TestWorkloadDeterminism:
    @pytest.mark.parametrize("name", ["PR_KR", "BFS_UR", "Camel", "HJ2",
                                      "Randacc", "xz"])
    def test_builds_are_identical(self, name):
        a = build_workload(name, "tiny")
        b = build_workload(name, "tiny")
        assert len(a.program) == len(b.program)
        assert a.program.instructions == b.program.instructions
        assert (a.memory.read_array(0x1_0000, 512).tolist()
                == b.memory.read_array(0x1_0000, 512).tolist())


class TestRunDeterminism:
    @pytest.mark.parametrize("tech", ["inorder", "imp", "ooo", "svr16"])
    def test_repeat_runs_bit_identical(self, tech):
        first = run("Camel", tech, scale="tiny")
        second = run("Camel", tech, scale="tiny")
        assert first.core.cycles == second.core.cycles
        assert first.core.instructions == second.core.instructions
        assert first.dram_lines == second.dram_lines
        assert (first.energy_per_instruction_nj
                == second.energy_per_instruction_nj)
        if first.svr is not None:
            assert first.svr.svi_lanes == second.svr.svi_lanes
            assert first.svr.prm_rounds == second.svr.prm_rounds

    def test_svr_stats_reproducible_across_windows(self):
        a = run("PR_UR", "svr16", scale="tiny", warmup=700, measure=2000)
        b = run("PR_UR", "svr16", scale="tiny", warmup=700, measure=2000)
        assert a.cpi_stack() == b.cpi_stack()
        assert a.hierarchy.prefetches_issued == b.hierarchy.prefetches_issued

    def test_metric_snapshots_bit_identical(self):
        """Two instrumented fixed-seed runs must produce equal metric
        snapshots — counters, histogram buckets and all."""
        from repro.obs import RunObservation

        first = RunObservation()
        second = RunObservation()
        result = run("Camel", "svr16", scale="tiny", obs=first)
        run("Camel", "svr16", scale="tiny", obs=second)
        snap_a, snap_b = first.metrics_snapshot(), second.metrics_snapshot()
        assert snap_a == snap_b
        assert snap_a["core.instructions"] == result.core.instructions

    def test_multicore_deterministic(self):
        from repro.harness.multicore import run_multicore

        a = run_multicore(["Camel", "PR_UR"], "svr16", scale="tiny",
                          warmup=400, measure=1500)
        b = run_multicore(["Camel", "PR_UR"], "svr16", scale="tiny",
                          warmup=400, measure=1500)
        assert [s.cycles for s in a.per_core] == [s.cycles for s in b.per_core]
        assert a.dram_lines == b.dram_lines
