"""CLI tests for ``repro report`` and the telemetry flags on ``sweep``."""

import json

import pytest

from repro.__main__ import main

BENCH_SNAPSHOT = {
    "schema": 1, "kind": "bench", "timestamp": "2026-08-08T00:00:00Z",
    "benchmarks": {
        "Camel/svr16": {"throughput": {"median": 1000.0}},
        "Randacc/svr16": {"throughput": {"median": 500.0}},
    },
}


@pytest.fixture
def journal(tmp_path, capsys):
    """A real sweep journal with telemetry, produced through the CLI."""
    path = tmp_path / "journal.jsonl"
    assert main(["sweep", "svr16", "--workloads", "Camel",
                 "--axis", "svr.srf_entries=2,8", "--scale", "tiny",
                 "--journal", str(path)]) == 0
    capsys.readouterr()
    return path


class TestReportCommand:
    def test_no_inputs_is_usage_error(self, capsys):
        assert main(["report"]) == 2
        assert "nothing to report on" in capsys.readouterr().err

    def test_html_report_from_journal(self, journal, tmp_path, capsys):
        out = tmp_path / "report.html"
        assert main(["report", "--journal", str(journal),
                     "-o", str(out)]) == 0
        captured = capsys.readouterr()
        # 2 axis points + the implicit baseline cell
        assert "3 cell(s): 3 ok" in captured.out
        assert "report written to" in captured.err
        html = out.read_text()
        assert html.lstrip().lower().startswith("<!doctype html>")
        assert "<script" not in html        # fully static, no JS deps
        assert "Camel/svr16" in html
        assert "sweep timeline" in html
        assert "prefers-color-scheme" in html

    def test_json_output(self, journal, tmp_path, capsys):
        assert main(["report", "--journal", str(journal),
                     "-o", str(tmp_path / "r.html"), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["cells"]) == 3
        assert all(c["status"] == "ok" for c in data["cells"])
        assert all(c["cpu_s"] is not None for c in data["cells"])
        assert data["metrics"]["core.instructions"]["kind"] == "counter"
        assert data["resources"]["cells"] == 3

    def test_bench_dir_trajectory(self, tmp_path, capsys):
        for stamp in ("20260807", "20260808"):
            snap = dict(BENCH_SNAPSHOT,
                        timestamp=f"2026-08-0{stamp[-1]}T00:00:00Z")
            (tmp_path / f"BENCH_{stamp}.json").write_text(
                json.dumps(snap))
        out = tmp_path / "report.html"
        assert main(["report", "--bench-dir", str(tmp_path),
                     "-o", str(out)]) == 0
        assert "2 bench snapshot(s)" in capsys.readouterr().out
        assert "Camel/svr16" in out.read_text()

    def test_failed_cells_surface_in_taxonomy(self, tmp_path, capsys):
        journal = tmp_path / "journal.jsonl"
        main(["sweep", "svr16", "--workloads", "Camel",
              "--axis", "svr.srf_entries=2,8", "--scale", "tiny",
              "--retries", "0", "--journal", str(journal),
              "--inject", "Camel/*srf_entries=2*:crash"])
        capsys.readouterr()
        out = tmp_path / "report.html"
        assert main(["report", "--journal", str(journal),
                     "-o", str(out), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["failure_taxonomy"].get("crash") == 1
        statuses = {c["status"] for c in data["cells"]}
        assert statuses == {"ok", "failed"}


class TestSweepTelemetryFlags:
    def test_sweep_reports_resources_and_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["sweep", "svr16", "--workloads", "Camel",
                     "--axis", "svr.srf_entries=2,8", "--scale", "tiny",
                     "--jobs", "2", "--trace", str(trace_path)]) == 0
        err = capsys.readouterr().err
        assert "telemetry: 3 cell(s)" in err
        assert "merged exec trace written to" in err
        from repro.obs import validate_trace

        trace = json.loads(trace_path.read_text())
        assert validate_trace(trace) == []
        tracks = [ev for ev in trace["traceEvents"]
                  if ev.get("ph") == "M"
                  and ev.get("name") == "process_name"]
        assert len(tracks) == 4            # parent + 3 worker cells

    def test_no_telemetry_opts_out(self, capsys):
        assert main(["sweep", "svr16", "--workloads", "Camel",
                     "--axis", "svr.srf_entries=2,8", "--scale", "tiny",
                     "--no-telemetry"]) == 0
        err = capsys.readouterr().err
        assert "telemetry:" not in err
