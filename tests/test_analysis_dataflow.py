"""Tests for the dataflow engine and its three concrete analyses."""

from repro.analysis import build_cfg
from repro.analysis.dataflow import (
    DefiniteAssignment,
    LiveRegisters,
    ReachingDefinitions,
    dead_definitions,
    unassigned_reads,
)
from repro.isa.program import ProgramBuilder
from repro.isa.registers import reg_index

from conftest import gather_program

T0 = reg_index("t0")
T1 = reg_index("t1")
T2 = reg_index("t2")


def counted_loop():
    b = ProgramBuilder("counted")
    b.li("t0", 0)             # pc 0: init
    b.label("loop")
    b.addi("t0", "t0", 1)     # pc 1: loop-carried redefinition
    b.cmp_lt("t1", "t0", "x0")
    b.bnez("t1", "loop")
    b.halt()
    return b.build()


class TestReachingDefinitions:
    def test_straight_line_kill(self):
        b = ProgramBuilder("kill")
        b.li("t0", 1)          # pc 0
        b.li("t0", 2)          # pc 1 kills pc 0
        b.mv("t1", "t0")       # pc 2
        b.halt()
        rd = ReachingDefinitions(build_cfg(b.build()))
        assert rd.reaching(2, T0) == frozenset({1})

    def test_loop_header_merges_init_and_latch(self):
        rd = ReachingDefinitions(build_cfg(counted_loop()))
        # At the addi both the init (pc 0) and the previous iteration's
        # update (pc 1) reach.
        assert rd.reaching(1, T0) == frozenset({0, 1})

    def test_gather_address_reaches_from_unique_defs(self):
        program = gather_program(0x1000, 0x2000, 8)
        rd = ReachingDefinitions(build_cfg(program))
        # pc 7 is the striding load `ld t2, t1, 0`; t1's reaching def is
        # the add at pc 6 even though t1 is also written at pc 5.
        assert rd.reaching(7, T1) == frozenset({6})


class TestLiveRegisters:
    def test_dead_after_last_read(self):
        b = ProgramBuilder("live")
        b.li("t0", 1)          # pc 0
        b.mv("t1", "t0")       # pc 1: last read of t0
        b.mv("t2", "t1")       # pc 2
        b.halt()
        live = LiveRegisters(build_cfg(b.build()))
        assert T0 in live.live_out(0)
        assert T0 not in live.live_out(1)
        assert T1 in live.live_out(1)

    def test_loop_carried_value_stays_live(self):
        live = LiveRegisters(build_cfg(counted_loop()))
        # t0 is read by the next iteration: live across the back edge.
        assert T0 in live.live_out(1)


class TestDefiniteAssignment:
    def test_one_sided_assignment_is_not_definite(self):
        b = ProgramBuilder("maybe")
        b.li("t0", 0)
        b.beqz("t0", "skip")
        b.li("t1", 7)          # only on the fallthrough path
        b.label("skip")
        b.mv("t2", "t1")       # pc 3 reads maybe-unassigned t1
        b.halt()
        cfg = build_cfg(b.build())
        da = DefiniteAssignment(cfg)
        assert T1 not in da.assigned_before(3)
        assert (3, T1) in unassigned_reads(cfg)

    def test_both_sided_assignment_is_definite(self):
        b = ProgramBuilder("both")
        b.li("t0", 0)
        b.beqz("t0", "else_")
        b.li("t1", 7)
        b.jmp("join")
        b.label("else_")
        b.li("t1", 8)
        b.label("join")
        b.mv("t2", "t1")
        b.halt()
        cfg = build_cfg(b.build())
        assert unassigned_reads(cfg) == []

    def test_x0_reads_never_flagged(self):
        b = ProgramBuilder("zero")
        b.mv("t0", "x0")
        b.halt()
        assert unassigned_reads(build_cfg(b.build())) == []


class TestDeadDefinitions:
    def test_overwritten_before_read_is_dead(self):
        b = ProgramBuilder("deadstore")
        b.li("t0", 1)          # pc 0: dead, overwritten at pc 1
        b.li("t0", 2)
        b.mv("t1", "t0")
        b.halt()
        cfg = build_cfg(b.build())
        assert (0, T0) in dead_definitions(cfg)
        assert (1, T0) not in dead_definitions(cfg)

    def test_keep_predicate_exempts_instructions(self):
        b = ProgramBuilder("keepload")
        b.li("a0", 0x1000)
        b.ld("t0", "a0", 0)    # result unused, but loads have side effects
        b.halt()
        cfg = build_cfg(b.build())
        assert (1, T0) in dead_definitions(cfg)
        assert (1, T0) not in dead_definitions(
            cfg, keep=lambda inst: inst.is_load)

    def test_clean_kernel_has_no_dead_defs(self):
        cfg = build_cfg(gather_program(0x1000, 0x2000, 8))
        assert dead_definitions(cfg) == []
