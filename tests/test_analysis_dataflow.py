"""Tests for the dataflow engine and its three concrete analyses."""

from repro.analysis import build_cfg
from repro.analysis.dataflow import (
    DefiniteAssignment,
    LiveRegisters,
    ReachingDefinitions,
    dead_definitions,
    dead_stores,
    unassigned_reads,
)
from repro.isa.program import ProgramBuilder
from repro.isa.registers import reg_index

from conftest import gather_program

T0 = reg_index("t0")
T1 = reg_index("t1")
T2 = reg_index("t2")


def counted_loop():
    b = ProgramBuilder("counted")
    b.li("t0", 0)             # pc 0: init
    b.label("loop")
    b.addi("t0", "t0", 1)     # pc 1: loop-carried redefinition
    b.cmp_lt("t1", "t0", "x0")
    b.bnez("t1", "loop")
    b.halt()
    return b.build()


class TestReachingDefinitions:
    def test_straight_line_kill(self):
        b = ProgramBuilder("kill")
        b.li("t0", 1)          # pc 0
        b.li("t0", 2)          # pc 1 kills pc 0
        b.mv("t1", "t0")       # pc 2
        b.halt()
        rd = ReachingDefinitions(build_cfg(b.build()))
        assert rd.reaching(2, T0) == frozenset({1})

    def test_loop_header_merges_init_and_latch(self):
        rd = ReachingDefinitions(build_cfg(counted_loop()))
        # At the addi both the init (pc 0) and the previous iteration's
        # update (pc 1) reach.
        assert rd.reaching(1, T0) == frozenset({0, 1})

    def test_gather_address_reaches_from_unique_defs(self):
        program = gather_program(0x1000, 0x2000, 8)
        rd = ReachingDefinitions(build_cfg(program))
        # pc 7 is the striding load `ld t2, t1, 0`; t1's reaching def is
        # the add at pc 6 even though t1 is also written at pc 5.
        assert rd.reaching(7, T1) == frozenset({6})


class TestLiveRegisters:
    def test_dead_after_last_read(self):
        b = ProgramBuilder("live")
        b.li("t0", 1)          # pc 0
        b.mv("t1", "t0")       # pc 1: last read of t0
        b.mv("t2", "t1")       # pc 2
        b.halt()
        live = LiveRegisters(build_cfg(b.build()))
        assert T0 in live.live_out(0)
        assert T0 not in live.live_out(1)
        assert T1 in live.live_out(1)

    def test_loop_carried_value_stays_live(self):
        live = LiveRegisters(build_cfg(counted_loop()))
        # t0 is read by the next iteration: live across the back edge.
        assert T0 in live.live_out(1)


class TestDefiniteAssignment:
    def test_one_sided_assignment_is_not_definite(self):
        b = ProgramBuilder("maybe")
        b.li("t0", 0)
        b.beqz("t0", "skip")
        b.li("t1", 7)          # only on the fallthrough path
        b.label("skip")
        b.mv("t2", "t1")       # pc 3 reads maybe-unassigned t1
        b.halt()
        cfg = build_cfg(b.build())
        da = DefiniteAssignment(cfg)
        assert T1 not in da.assigned_before(3)
        assert (3, T1) in unassigned_reads(cfg)

    def test_both_sided_assignment_is_definite(self):
        b = ProgramBuilder("both")
        b.li("t0", 0)
        b.beqz("t0", "else_")
        b.li("t1", 7)
        b.jmp("join")
        b.label("else_")
        b.li("t1", 8)
        b.label("join")
        b.mv("t2", "t1")
        b.halt()
        cfg = build_cfg(b.build())
        assert unassigned_reads(cfg) == []

    def test_x0_reads_never_flagged(self):
        b = ProgramBuilder("zero")
        b.mv("t0", "x0")
        b.halt()
        assert unassigned_reads(build_cfg(b.build())) == []


class TestDeadDefinitions:
    def test_overwritten_before_read_is_dead(self):
        b = ProgramBuilder("deadstore")
        b.li("t0", 1)          # pc 0: dead, overwritten at pc 1
        b.li("t0", 2)
        b.mv("t1", "t0")
        b.halt()
        cfg = build_cfg(b.build())
        assert (0, T0) in dead_definitions(cfg)
        assert (1, T0) not in dead_definitions(cfg)

    def test_keep_predicate_exempts_instructions(self):
        b = ProgramBuilder("keepload")
        b.li("a0", 0x1000)
        b.ld("t0", "a0", 0)    # result unused, but loads have side effects
        b.halt()
        cfg = build_cfg(b.build())
        assert (1, T0) in dead_definitions(cfg)
        assert (1, T0) not in dead_definitions(
            cfg, keep=lambda inst: inst.is_load)

    def test_clean_kernel_has_no_dead_defs(self):
        cfg = build_cfg(gather_program(0x1000, 0x2000, 8))
        assert dead_definitions(cfg) == []


class TestDeadStores:
    def test_kill_pc_identified(self):
        b = ProgramBuilder("killed")
        b.li("t0", 1)          # pc 0: clobbered at pc 1, never read
        b.li("t0", 2)
        b.mv("t1", "t0")
        b.halt()
        cfg = build_cfg(b.build())
        assert dead_stores(cfg) == [(0, T0, 1)]

    def test_value_dead_at_exit_is_not_a_store_kill(self):
        # t0's last value is unread, but nothing overwrites it: that's a
        # plain dead definition (W103 territory), not a dead store.
        b = ProgramBuilder("exitdead")
        b.li("t0", 1)
        b.addi("t0", "t0", 1)  # pc 1: dead at exit, no later write
        b.halt()
        cfg = build_cfg(b.build())
        assert (1, T0) in dead_definitions(cfg)
        assert dead_stores(cfg) == []

    def test_cross_block_kill(self):
        b = ProgramBuilder("crossblock")
        b.li("t0", 1)          # pc 0: killed at pc 3 in another block
        b.li("t1", 0)
        b.beqz("t1", "over")
        b.label("over")
        b.li("t0", 2)          # pc 3
        b.mv("t2", "t0")
        b.halt()
        cfg = build_cfg(b.build())
        assert (0, T0, 3) in dead_stores(cfg)

    def test_read_on_one_path_is_not_dead(self):
        # The def is overwritten on the fallthrough path but read on the
        # taken path: liveness keeps it out of the dead-store set.
        b = ProgramBuilder("onepath")
        b.li("t0", 1)
        b.li("t1", 0)
        b.beqz("t1", "use")
        b.li("t0", 2)          # overwrite on one path only
        b.jmp("end")
        b.label("use")
        b.mv("t2", "t0")       # read on the other
        b.label("end")
        b.halt()
        cfg = build_cfg(b.build())
        assert all(pc != 0 for pc, _, _ in dead_stores(cfg))


class TestEdgeCaseCFGs:
    """The engine must degrade gracefully off the happy path: unreachable
    code, one-block self-loops, and irreducible (multi-entry) cycles."""

    def test_unreachable_block_queries_are_safe(self):
        b = ProgramBuilder("unreach")
        b.jmp("end")
        b.li("t0", 1)          # pc 1: unreachable
        b.mv("t1", "t0")       # pc 2: unreachable read
        b.label("end")
        b.halt()
        cfg = build_cfg(b.build())
        # Solvers only visit reachable blocks; point queries on unreachable
        # pcs return the safe defaults instead of raising.
        assert ReachingDefinitions(cfg).reaching(2, T0) == frozenset()
        assert LiveRegisters(cfg).live_out(1) == frozenset()
        assert DefiniteAssignment(cfg).assigned_before(2) == \
            DefiniteAssignment.ALL
        # ... and the whole-program sweeps skip them entirely.
        assert unassigned_reads(cfg) == []
        assert dead_definitions(cfg) == []
        assert dead_stores(cfg) == []

    def test_single_block_self_loop(self):
        b = ProgramBuilder("spin")
        b.label("spin")
        b.addi("t0", "t0", 1)  # pc 0: loop-carried through the back edge
        b.cmp_lt("t1", "t0", "x0")
        b.bnez("t1", "spin")
        b.halt()
        cfg = build_cfg(b.build())
        # The block is its own predecessor: the def at pc 0 must reach its
        # own top through the back edge, and t0 stays live across it.
        assert 0 in ReachingDefinitions(cfg).reaching(0, T0)
        assert T0 in LiveRegisters(cfg).live_out(0)
        # t0 is read at pc 0 before any assignment on the entry path.
        assert (0, T0) in unassigned_reads(cfg)

    def test_irreducible_control_flow_terminates(self):
        # Two entries into one cycle (branch jumps into the middle): no
        # natural loop exists, but the fixpoint must still converge and
        # every query stay consistent.
        b = ProgramBuilder("irreducible")
        b.li("t0", 0)
        b.beqz("t0", "mid")
        b.label("head")
        b.addi("t0", "t0", 1)
        b.label("mid")
        b.addi("t0", "t0", 2)
        b.cmp_lt("t1", "t0", "x0")
        b.bnez("t1", "head")
        b.halt()
        cfg = build_cfg(b.build())
        # The cycle head..mid has two entries, so it is not a natural loop.
        assert all(loop.header not in (2, 3) for loop in cfg.loops)
        # Both entry paths (the branch at pc 1 and the cycle's back edge
        # through head at pc 2) merge their defs at mid's top.
        reach = ReachingDefinitions(cfg)
        assert reach.reaching(3, T0) == frozenset({0, 2})
        # t0 is assigned at entry on every path: no bogus W101-style hits.
        assert unassigned_reads(cfg) == []
        assert T0 in DefiniteAssignment(cfg).assigned_before(3)
