"""Tests for the self-benchmarking subsystem: registry, runner
statistics, trajectory artifacts, the regression comparator and the
``repro bench`` CLI (including the MAD-scaled gate)."""

import json
import time

import pytest

from repro.bench import (
    BenchConfig,
    Benchmark,
    BenchContext,
    Work,
    all_benchmarks,
    benchmark_names,
    compare,
    environment_mismatch,
    find_artifacts,
    gate,
    get_benchmark,
    latest_artifact,
    load_artifact,
    mad,
    median,
    run_benchmarks,
    run_one,
    select_benchmarks,
    write_artifact,
)
from repro.bench.compare import (
    ERROR,
    IMPROVEMENT,
    MISSING,
    NEW,
    OK,
    REGRESSION,
)


class TestStats:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5
        assert median([7.0]) == 7.0

    def test_mad(self):
        assert mad([1.0, 2.0, 3.0, 100.0]) == 1.0
        assert mad([5.0, 5.0, 5.0]) == 0.0


class TestRegistry:
    def test_catalogue_covers_hot_paths(self):
        names = benchmark_names()
        assert len(names) >= 8
        assert names == sorted(names)
        groups = {b.group for b in all_benchmarks()}
        assert {"core", "svr", "mem", "isa", "e2e"} <= groups

    def test_select_patterns(self):
        mem = select_benchmarks(("mem.*",))
        assert mem and all(b.name.startswith("mem.") for b in mem)
        assert select_benchmarks(()) == all_benchmarks()
        with pytest.raises(ValueError, match="no benchmark matches"):
            select_benchmarks(("nope.*",))

    def test_get_benchmark_unknown(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            get_benchmark("nope")

    def test_duplicate_name_rejected(self):
        from repro.bench.registry import register

        benchmark_names()          # ensure the catalogue is loaded first
        with pytest.raises(ValueError, match="duplicate"):
            register("isa.assemble", group="isa", unit="x",
                     description="dup")(lambda ctx: None)


def _quick_config(**overrides):
    defaults = dict(quick=True, repetitions=2, only=("isa.assemble",))
    defaults.update(overrides)
    return BenchConfig(**defaults)


class TestRunner:
    def test_run_one_summary_shape(self):
        outcome = run_one(get_benchmark("isa.assemble"), _quick_config())
        summary = outcome.summary()
        assert summary["repetitions"] == 2
        assert summary["unit"] == "instructions"
        for stats_key in ("wall_s", "throughput"):
            stats = summary[stats_key]
            assert {"median", "mad", "min", "max"} <= set(stats)
        assert summary["throughput"]["median"] > 0
        assert "error" not in summary

    def test_failing_benchmark_is_recorded_not_raised(self):
        def setup(_ctx):
            raise RuntimeError("boom")

        bad = Benchmark(name="x.bad", group="isa", unit="u",
                        description="always fails", setup=setup)
        summary = run_one(bad, _quick_config()).summary()
        assert summary["error"] == "RuntimeError: boom"
        assert "throughput" not in summary

    def test_profile_embeds_hotspots(self):
        outcome = run_one(get_benchmark("isa.assemble"),
                          _quick_config(profile=True, profile_top=5))
        spots = outcome.summary()["hotspots"]
        assert 0 < len(spots) <= 5
        assert all({"site", "ncalls", "cumtime_s"} <= set(s)
                   for s in spots)
        assert any("assembler" in s["site"] for s in spots)

    def test_repetitions_floor(self):
        with pytest.raises(ValueError, match=">= 2"):
            BenchConfig(repetitions=1).effective_repetitions

    def test_run_benchmarks_summary(self):
        summary = run_benchmarks(_quick_config(only=("isa.*", "mem.dram.*")))
        assert summary["schema"] == 1
        assert summary["kind"] == "bench"
        assert summary["timestamp"].endswith("Z")
        assert set(summary["benchmarks"]) == {"isa.assemble",
                                              "mem.dram.schedule"}
        env = summary["environment"]
        assert {"python", "platform", "cpu_count", "git_sha"} <= set(env)
        # SelfProfile sections: one wall-clock entry per benchmark.
        assert set(summary["profile"]) == set(summary["benchmarks"])

    def test_artifact_round_trip_and_ordering(self, tmp_path):
        summary = run_benchmarks(_quick_config())
        seed = tmp_path / "BENCH_0001.json"
        seed.write_text(json.dumps(summary))
        first = write_artifact(summary, tmp_path)
        second = write_artifact(summary, tmp_path)
        assert find_artifacts(tmp_path) == [seed, first, second]
        assert latest_artifact(tmp_path) == second
        assert latest_artifact(tmp_path, exclude=second) == first
        assert load_artifact(first)["benchmarks"] == summary["benchmarks"]

    def test_load_artifact_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text('{"kind": "run"}')
        with pytest.raises(ValueError, match="not a bench artifact"):
            load_artifact(path)


def _artifact(environment=None, **benches):
    return {"schema": 1, "kind": "bench",
            "environment": environment or {}, "benchmarks": benches}


def _entry(median_value, mad_value=0.0):
    return {"throughput": {"median": median_value, "mad": mad_value}}


class TestCompare:
    def test_taxonomy(self):
        baseline = _artifact(
            steady=_entry(100.0), slowed=_entry(100.0),
            faster=_entry(100.0), vanished=_entry(100.0),
            broken=_entry(100.0))
        current = _artifact(
            steady=_entry(95.0), slowed=_entry(40.0),
            faster=_entry(200.0), fresh=_entry(10.0),
            broken={"error": "RuntimeError: boom"})
        by_name = {d.name: d for d in compare(current, baseline)}
        assert by_name["steady"].status == OK
        assert by_name["slowed"].status == REGRESSION
        assert by_name["slowed"].change == pytest.approx(-0.6)
        assert by_name["faster"].status == IMPROVEMENT
        assert by_name["fresh"].status == NEW
        assert by_name["vanished"].status == MISSING
        assert by_name["broken"].status == ERROR
        assert not gate(list(by_name.values()))
        assert gate([by_name["steady"], by_name["faster"],
                     by_name["fresh"]])

    def test_mad_widens_threshold(self):
        baseline = _artifact(noisy=_entry(100.0, mad_value=20.0))
        current = _artifact(noisy=_entry(55.0))
        # 4 * 1.4826 * 20/100 ≈ 1.19 relative threshold: -45% is noise.
        (delta,) = compare(current, baseline)
        assert delta.status == OK
        assert delta.threshold > 1.0
        # With a tight baseline the same drop is a regression.
        (delta,) = compare(_artifact(noisy=_entry(55.0)),
                           _artifact(noisy=_entry(100.0)))
        assert delta.status == REGRESSION

    def test_rel_tolerance_floor(self):
        baseline = _artifact(b=_entry(100.0))
        (delta,) = compare(_artifact(b=_entry(80.0)), baseline,
                           rel_tolerance=0.25)
        assert delta.status == OK
        (delta,) = compare(_artifact(b=_entry(80.0)), baseline,
                           rel_tolerance=0.1)
        assert delta.status == REGRESSION

    def test_environment_mismatch_note(self):
        same = {"platform": "p", "machine": "m", "python": "3.11",
                "cpu_count": 4}
        other = dict(same, cpu_count=64)
        assert environment_mismatch(_artifact(same), _artifact(same)) == ""
        note = environment_mismatch(_artifact(same), _artifact(other))
        assert "cpu_count" in note


class TestCellBenchmarks:
    def test_e2e_cell_reports_simulated_work(self):
        bench = get_benchmark("e2e.camel.svr16")
        rep = bench.setup(BenchContext(quick=True))
        work = rep()
        assert isinstance(work, Work)
        assert work.instructions == work.units > 0
        assert work.sim_cycles > 0


class TestCli:
    def test_quick_bench_emits_schema_versioned_artifact(
            self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["bench", "--quick", "--reps", "2",
                     "--dir", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        benches = payload["benchmarks"]
        assert len(benches) >= 8
        for name, entry in benches.items():
            assert entry["repetitions"] == 2, name
            assert "median" in entry["throughput"], name
            assert "mad" in entry["throughput"], name
        paths = find_artifacts(tmp_path)
        assert len(paths) == 1
        assert load_artifact(paths[0])["benchmarks"].keys() \
            == benches.keys()

    def test_gate_passes_on_unchanged_tree(self, tmp_path, capsys):
        from repro.__main__ import main

        args = ["bench", "--only", "isa.assemble", "--reps", "3",
                "--dir", str(tmp_path), "--threshold", "0.5"]
        assert main(args) == 0
        assert main(args + ["--compare", "--gate"]) == 0
        out = capsys.readouterr().out
        assert "0 gate failure(s)" in out

    def test_gate_fails_on_monkeypatched_hot_path(
            self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main
        from repro.isa import assembler

        args = ["bench", "--quick", "--only", "isa.assemble",
                "--reps", "2", "--dir", str(tmp_path)]
        assert main(args) == 0

        real_assemble = assembler.assemble

        def slowed(source, name="assembly"):
            time.sleep(0.1)
            return real_assemble(source, name)

        monkeypatch.setattr(assembler, "assemble", slowed)
        assert main(args + ["--compare", "--gate"]) == 1
        err = capsys.readouterr().err
        assert "regression gate FAILED" in err

    def test_gate_without_prior_artifact_passes(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["bench", "--quick", "--only", "isa.assemble",
                     "--reps", "2", "--dir", str(tmp_path),
                     "--compare", "--gate"]) == 0
        assert "first trajectory point" in capsys.readouterr().err

    def test_jsonl_record(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.obs import RunLog

        jsonl = tmp_path / "log.jsonl"
        assert main(["bench", "--quick", "--only", "mem.dram.*",
                     "--reps", "2", "--dir", str(tmp_path),
                     "--jsonl", str(jsonl)]) == 0
        capsys.readouterr()
        (record,) = RunLog(jsonl).read()
        assert record["kind"] == "bench"
        assert record["artifact"].endswith(".json")
        assert "mem.dram.schedule" in record["benchmarks"]
        assert set(record["profile"]) == {"mem.dram.schedule"}

    def test_bad_reps_rejected(self, capsys):
        from repro.__main__ import main

        assert main(["bench", "--quick", "--reps", "1"]) == 2
        assert ">= 2" in capsys.readouterr().err


class TestSeedBaseline:
    def test_in_repo_seed_is_a_valid_trajectory_point(self):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        seed = root / "BENCH_0001.json"
        assert seed.exists(), "seed baseline BENCH_0001.json missing"
        art = load_artifact(seed)
        assert len(art["benchmarks"]) >= 8
        assert art["environment"]["git_sha"] is not None
