"""Tests for the plain-text chart renderers."""

from repro.harness.charts import bar_chart, grouped_bar_chart, sparkline


class TestBarChart:
    def test_contains_labels_and_values(self):
        text = bar_chart({"inorder": 1.0, "svr16": 3.2}, title="T")
        assert "T" in text and "inorder" in text and "3.20" in text

    def test_longest_bar_is_peak(self):
        text = bar_chart({"a": 1.0, "b": 4.0}, width=20)
        lines = text.splitlines()
        assert lines[1].count("█") > lines[0].count("█")

    def test_baseline_annotation(self):
        text = bar_chart({"inorder": 1.0, "svr16": 3.0},
                         baseline="inorder")
        assert "(3.00x)" in text and "(1.00x)" in text

    def test_empty_series(self):
        assert bar_chart({}, title="X") == "X"

    def test_zero_values_render(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "0.00" in text


class TestGroupedBarChart:
    def test_rows_and_columns_present(self):
        rows = {"PR": {"inorder": 5.0, "svr16": 2.0},
                "BFS": {"inorder": 4.0, "svr16": 2.1}}
        text = grouped_bar_chart(rows, title="CPI")
        assert "PR:" in text and "BFS:" in text
        assert text.count("inorder") == 2

    def test_global_peak_scaling(self):
        rows = {"x": {"big": 10.0}, "y": {"small": 1.0}}
        text = grouped_bar_chart(rows, width=10)
        big_line = [l for l in text.splitlines() if "big" in l][0]
        small_line = [l for l in text.splitlines() if "small" in l][0]
        assert big_line.count("█") == 10
        assert small_line.count("█") <= 1

    def test_empty(self):
        assert grouped_bar_chart({}, title="E") == "E"


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches_input(self):
        assert len(sparkline(range(17))) == 17
