"""Integration tests for the timed memory hierarchy."""

import pytest

from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy
from repro.memory.main_memory import MainMemory


def make_hierarchy(**overrides):
    mem = MainMemory(capacity_bytes=1 << 22)
    cfg = MemoryConfig(stride_prefetcher=False, **overrides)
    return mem, MemoryHierarchy(mem, cfg)


class TestLoadPath:
    def test_cold_load_goes_to_dram(self):
        mem, hier = make_hierarchy()
        out = hier.load(0x10000, 0.0, pc=1)
        assert out.level == "dram"
        assert out.completion > hier.dram.latency_cycles

    def test_second_load_hits_l1(self):
        mem, hier = make_hierarchy()
        first = hier.load(0x10000, 0.0, pc=1)
        out = hier.load(0x10000, first.completion + 1, pc=1)
        assert out.level == "l1"
        assert out.completion == pytest.approx(
            first.completion + 1 + hier.config.l1_latency)

    def test_same_line_different_word_hits(self):
        mem, hier = make_hierarchy()
        first = hier.load(0x10000, 0.0, pc=1)
        out = hier.load(0x10008, first.completion + 1, pc=1)
        assert out.level == "l1"

    def test_l2_hit_after_l1_eviction(self):
        mem, hier = make_hierarchy(l1_size=4096, l1_assoc=1)
        first = hier.load(0x10000, 0.0, pc=1)
        t = first.completion + 1
        # Evict from the direct-mapped L1 by touching a conflicting line.
        out2 = hier.load(0x10000 + 4096, t, pc=2)
        out = hier.load(0x10000, out2.completion + 1, pc=1)
        assert out.level == "l2"

    def test_inflight_miss_merges(self):
        """A second access while the line is in flight completes with it."""
        mem, hier = make_hierarchy()
        first = hier.load(0x10000, 0.0, pc=1)
        lines_before = hier.stats.dram_fetches["demand"]
        second = hier.load(0x10000, 1.0, pc=2)
        assert second.completion == pytest.approx(first.completion)
        assert hier.stats.dram_fetches["demand"] == lines_before

    def test_mshr_limit_serialises_misses(self):
        # Same page (no TLB interference), different cache lines.
        addr_a, addr_b = 0x40000, 0x40800
        mem, one = make_hierarchy(l1_mshrs=1)
        a = one.load(addr_a, 0.0, pc=1)
        b = one.load(addr_b, 0.0, pc=2)
        assert b.completion > a.completion  # second miss waited for the MSHR

        mem, many = make_hierarchy(l1_mshrs=8)
        a2 = many.load(addr_a, 0.0, pc=1)
        b2 = many.load(addr_b, 0.0, pc=2)
        assert b2.completion < b.completion  # overlapped

    def test_load_counters(self):
        mem, hier = make_hierarchy()
        hier.load(0x10000, 0.0, pc=1)
        hier.load(0x10000, 500.0, pc=1)
        stats = hier.stats
        assert stats.loads == 2
        assert stats.dram_loads == 1 and stats.l1_load_hits == 1


class TestStores:
    def test_store_allocates_and_dirties(self):
        mem, hier = make_hierarchy()
        hier.store(0x10000, 0.0, pc=1)
        line = 0x10000 // 64
        assert hier.l1.lookup(line).dirty

    def test_dirty_eviction_writes_back(self):
        mem, hier = make_hierarchy(l1_size=4096, l1_assoc=1,
                                   l2_size=8192, l2_assoc=1)
        hier.store(0x10000, 0.0, pc=1)
        # Conflict-evict through L1 and then L2.
        hier.load(0x10000 + 8192, 500.0, pc=2)
        hier.load(0x10000 + 16384, 1000.0, pc=3)
        assert hier.stats.writebacks >= 1


class TestPrefetch:
    def test_prefetch_fills_for_later_demand(self):
        mem, hier = make_hierarchy()
        done = hier.prefetch(0x10000, 0.0, "svr", drop_on_full=False)
        out = hier.load(0x10000, done + 1, pc=1)
        assert out.level == "l1"
        assert out.prefetch_hit

    def test_demand_on_inflight_prefetch_merges(self):
        mem, hier = make_hierarchy()
        done = hier.prefetch(0x10000, 0.0, "svr", drop_on_full=False)
        out = hier.load(0x10000, 1.0, pc=1)
        assert out.completion == pytest.approx(done)

    def test_useful_prefetch_accounting(self):
        mem, hier = make_hierarchy()
        hier.prefetch(0x10000, 0.0, "svr", drop_on_full=False)
        hier.load(0x10000, 500.0, pc=1)
        assert hier.stats.prefetch_useful["svr"] == 1
        assert hier.stats.accuracy("svr") == 1.0

    def test_useless_prefetch_detected_on_l2_eviction(self):
        mem, hier = make_hierarchy(l1_size=4096, l1_assoc=1,
                                   l2_size=8192, l2_assoc=1)
        hier.prefetch(0x10000, 0.0, "svr", drop_on_full=False)
        # Conflict the line out of both levels without ever touching it.
        hier.load(0x10000 + 8192, 500.0, pc=2)
        hier.load(0x10000 + 16384, 1500.0, pc=3)
        assert hier.stats.prefetch_useless["svr"] == 1
        assert hier.stats.accuracy("svr") == 0.0

    def test_droppable_prefetch_dropped_when_mshrs_full(self):
        mem, hier = make_hierarchy(l1_mshrs=1)
        hier.load(0x40000, 0.0, pc=1)           # occupies the only MSHR
        # Same page (translation already cached), different line.
        result = hier.prefetch(0x40800, 1.0, "stride", drop_on_full=True)
        assert result is None
        assert hier.stats.prefetches_dropped["stride"] == 1

    def test_svr_prefetch_waits_instead_of_dropping(self):
        mem, hier = make_hierarchy(l1_mshrs=1)
        first = hier.load(0x40000, 0.0, pc=1)
        done = hier.prefetch(0x10000, 1.0, "svr", drop_on_full=False)
        assert done is not None and done > first.completion

    def test_unknown_origin_rejected(self):
        mem, hier = make_hierarchy()
        with pytest.raises(ValueError):
            hier.prefetch(0x10000, 0.0, "mystery")

    def test_dram_fetch_attribution(self):
        mem, hier = make_hierarchy()
        hier.prefetch(0x10000, 0.0, "svr", drop_on_full=False)
        hier.load(0x80000, 0.0, pc=1)
        assert hier.stats.dram_fetches["svr"] == 1
        assert hier.stats.dram_fetches["demand"] == 1

    def test_accuracy_listener_notified(self):
        events = []

        class Listener:
            def on_useful(self, origin):
                events.append(("useful", origin))

            def on_useless(self, origin):
                events.append(("useless", origin))

        mem, hier = make_hierarchy()
        hier.accuracy_listener = Listener()
        hier.prefetch(0x10000, 0.0, "svr", drop_on_full=False)
        hier.load(0x10000, 500.0, pc=1)
        assert ("useful", "svr") in events


class TestPrefetchTagConsistency:
    def test_second_prefetcher_does_not_steal_credit(self):
        """First prefetch wins: a line already outstanding for one origin
        keeps that origin when a second prefetcher re-requests it."""
        mem, hier = make_hierarchy(l1_size=4096, l1_assoc=1)
        hier.prefetch(0x10000, 0.0, "stride", drop_on_full=False)
        # Conflict the line out of the direct-mapped L1 (it stays in L2 and
        # stays outstanding — it was never demand-touched).
        hier.load(0x10000 + 4096, 500.0, pc=1)
        # A second prefetcher re-requests the same line: L1 miss, L2 hit.
        hier.prefetch(0x10000, 1000.0, "svr", drop_on_full=False)
        # The eventual demand touch credits the *first* prefetcher.
        hier.load(0x10000, 2000.0, pc=2)
        assert hier.stats.prefetch_useful["stride"] == 1
        assert hier.stats.prefetch_useful["svr"] == 0

    def test_l1_victim_writeback_keeps_prefetch_tag_in_l2(self):
        """A dirty prefetched line evicted from L1 must land in L2 with its
        prefetch tag intact, not as an anonymous demand line."""
        # L2 smaller than L1 so the L2 copy can be dropped while the L1
        # copy survives (the hierarchy is non-inclusive).
        mem, hier = make_hierarchy(l1_size=8192, l1_assoc=1,
                                   l2_size=4096, l2_assoc=1)
        line = 0x10000 // 64
        hier.prefetch(0x10000, 0.0, "svr", drop_on_full=False)
        # Evict the L2 copy (conflicts in L2's single way, not in L1's).
        hier.load(0x10000 + 4096, 500.0, pc=1)
        assert hier.l2.lookup(line, count_stats=False) is None
        assert hier.l1.lookup(line, count_stats=False) is not None
        # Demand store: marks the L1 line dirty (and consumes usefulness).
        hier.store(0x10000, 1000.0, pc=2)
        # Now conflict the dirty line out of L1; the writeback must carry
        # the prefetch tag into L2.
        hier.load(0x10000 + 8192, 2000.0, pc=3)
        l2_meta = hier.l2.lookup(line, count_stats=False)
        assert l2_meta is not None
        assert l2_meta.dirty
        assert l2_meta.prefetched and l2_meta.origin == "svr"


class TestPendingPurge:
    def test_expired_entries_swept_on_cadence(self):
        """The in-flight map must not accumulate long-dead entries: a sweep
        runs every ``_PURGE_INTERVAL`` accesses and drops everything expired
        beyond ``_PURGE_MARGIN``."""
        from repro.memory.hierarchy import _PURGE_INTERVAL, _PURGE_MARGIN

        mem, hier = make_hierarchy()
        t = 0.0
        total = _PURGE_INTERVAL + 512
        for i in range(total):
            # Distinct lines, far apart in time so entries expire well past
            # the safety margin before the cadence sweep fires.
            hier.load(0x10000 + i * 64, t, pc=1)
            t += 2.0 * _PURGE_MARGIN
        # Without the sweep every one of the `total` misses would still sit
        # in the map (the old code only trimmed past 4096 entries).
        assert len(hier._pending) <= 600
        # Invariant: right after a sweep, nothing in the map is expired
        # beyond the safety margin.
        hier._purge_pending(t)
        assert all(done > t - _PURGE_MARGIN
                   for done, _ in hier._pending.values())

    def test_recent_entries_survive_the_sweep(self):
        mem, hier = make_hierarchy()
        out = hier.load(0x10000, 0.0, pc=1)
        hier._purge_pending(out.completion + 1.0)   # within the margin
        assert (0x10000 // 64) in hier._pending
        hier._purge_pending(out.completion + 1.0e9)  # far past it
        assert (0x10000 // 64) not in hier._pending


class TestIntegration:
    def test_stride_prefetcher_covers_sequential_stream(self):
        mem = MainMemory(capacity_bytes=1 << 22)
        hier = MemoryHierarchy(mem, MemoryConfig(stride_prefetcher=True))
        t = 0.0
        latencies = []
        for i in range(64):
            out = hier.load(0x10000 + i * 64, t, pc=7)
            latencies.append(out.completion - t)
            t = out.completion + 1
        # The tail of the stream should be (at least partially) covered: far
        # cheaper on average than the full DRAM round trip.
        tail = latencies[-8:]
        assert sum(tail) / len(tail) < hier.dram.latency_cycles / 2

    def test_tlb_walk_charged_on_first_touch(self):
        mem, hier = make_hierarchy()
        cold = hier.load(0x10000, 0.0, pc=1)
        mem2, hier2 = make_hierarchy()
        hier2.tlb.translate(0x10000, 0.0)   # pre-warm the TLB
        warm = hier2.load(0x10000, 0.0, pc=1)
        assert cold.completion > warm.completion

    def test_reset_stats_preserves_cache_state(self):
        mem, hier = make_hierarchy()
        hier.load(0x10000, 0.0, pc=1)
        hier.reset_stats()
        assert hier.stats.loads == 0
        out = hier.load(0x10000, 1000.0, pc=1)
        assert out.level == "l1"     # still cached
