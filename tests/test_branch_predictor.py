"""Unit tests for the hybrid local/global branch predictor."""

from repro.branch.predictor import HybridBranchPredictor, _SaturatingCounter


class TestSaturatingCounter:
    def test_initial_state_weakly_not_taken(self):
        counter = _SaturatingCounter()
        assert not counter.taken

    def test_trains_toward_taken(self):
        counter = _SaturatingCounter()
        counter.update(True)
        assert counter.taken

    def test_saturates_high(self):
        counter = _SaturatingCounter()
        for _ in range(10):
            counter.update(True)
        assert counter.value == 3

    def test_saturates_low(self):
        counter = _SaturatingCounter()
        for _ in range(10):
            counter.update(False)
        assert counter.value == 0


class TestPredictor:
    def test_learns_always_taken(self):
        pred = HybridBranchPredictor()
        for _ in range(50):
            pred.predict_and_update(100, True)
        assert pred.predict_and_update(100, True)

    def test_learns_never_taken(self):
        pred = HybridBranchPredictor()
        for _ in range(50):
            pred.predict_and_update(100, False)
        assert pred.predict_and_update(100, False)

    def test_learns_loop_backedge_pattern(self):
        """A loop branch taken N-1 times then not taken once: high accuracy."""
        pred = HybridBranchPredictor()
        for _ in range(200):
            for i in range(8):
                pred.predict_and_update(100, i != 7)
        assert pred.accuracy > 0.80

    def test_alternating_pattern_learned_by_history(self):
        pred = HybridBranchPredictor()
        outcome = True
        for _ in range(400):
            pred.predict_and_update(100, outcome)
            outcome = not outcome
        # The last 100 predictions should be essentially perfect.
        start = pred.mispredictions
        for _ in range(100):
            pred.predict_and_update(100, outcome)
            outcome = not outcome
        assert pred.mispredictions - start <= 5

    def test_mispredictions_counted(self):
        pred = HybridBranchPredictor()
        pred.predict_and_update(100, True)
        assert pred.predictions == 1
        assert pred.mispredictions <= 1

    def test_independent_pcs(self):
        pred = HybridBranchPredictor()
        for _ in range(50):
            pred.predict_and_update(100, True)
            pred.predict_and_update(204, False)
        assert pred.predict_and_update(100, True)
        assert pred.predict_and_update(204, False)

    def test_accuracy_starts_at_one(self):
        assert HybridBranchPredictor().accuracy == 1.0

    def test_penalty_configurable(self):
        assert HybridBranchPredictor(misprediction_penalty=12.5).penalty == 12.5
