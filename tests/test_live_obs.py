"""The live observability plane: progress frames from the core run
loops up through the executor, the serve pool, long-polling, event
streaming and Prometheus exposition.

Unit layers use fakes (a fake core, a manual clock); the HTTP layers
run a real ReproServer on an ephemeral port, mirroring
``test_serve_http``.  The invariants that matter:

* disabled progress is byte-identical to the pre-progress hot path;
* frames advance monotonically in simulated time;
* a long-poll timeout is a 200 with the current state, never an error;
* a client vanishing mid-``/events`` stream leaves the scheduler (and
  every later request) healthy.
"""

from __future__ import annotations

import socket
import threading
import time
import urllib.request

import pytest

from repro.exec import ExecConfig, RunSpec, run_cells
from repro.obs.metrics import (
    MetricsRegistry,
    prometheus_exposition,
    prometheus_name,
)
from repro.obs.progress import (
    ProgressConfig,
    ProgressFrame,
    ProgressReporter,
    advancing,
)
from repro.serve import EventBroker, Job, JobQueue, MetricsRing
from repro.serve.queue import RUNNING
from repro.serve.top import (
    frame_eta_s,
    frame_fraction,
    progress_bar,
    render_journal_view,
    render_server_view,
    run_top,
    sparkline,
)

from tests.test_serve_http import client_for, start_server, stop_server


class FakeStats:
    def __init__(self, end_cycle: float, ipc: float = 1.0) -> None:
        self.end_cycle = end_cycle
        self.ipc = ipc


class FakeCore:
    svr = None
    vr = None

    def __init__(self, cycle: float = 0.0, instructions: int = 0,
                 pc: int = 0) -> None:
        self.stats = FakeStats(cycle)
        self.lifetime_instructions = instructions
        self.pc = pc


class ManualClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------------------
# Reporter unit behaviour.
# ---------------------------------------------------------------------------

class TestProgressReporter:
    def test_frames_carry_sim_state_and_sequence(self):
        clock, frames = ManualClock(), []
        reporter = ProgressReporter(frames.append, min_interval_s=0.0,
                                    workload="w", technique="t",
                                    clock=clock)
        reporter.annotate(target_instructions=10_000)
        reporter.set_phase("measure")
        core = FakeCore(cycle=500.0, instructions=2_500, pc=64)
        clock.now += 3.0
        frame = reporter.sample(core)
        assert frame is frames[0]
        assert frame.seq == 0 and frame.phase == "measure"
        assert frame.cycle == 500.0 and frame.instructions == 2_500
        assert frame.pc == 64 and frame.workload == "w"
        assert frame.wall_s == pytest.approx(3.0)
        assert frame.fraction == pytest.approx(0.25)
        round_trip = ProgressFrame.from_dict(frame.to_dict())
        assert round_trip == frame

    def test_wall_clock_rate_limit_and_force(self):
        clock, frames = ManualClock(), []
        reporter = ProgressReporter(frames.append, min_interval_s=0.5,
                                    clock=clock)
        core = FakeCore()
        assert reporter.sample(core) is not None
        clock.now += 0.1
        assert reporter.sample(core) is None      # inside the floor
        assert reporter.sample(core, force=True) is not None
        clock.now += 0.6
        assert reporter.sample(core) is not None
        assert [f.seq for f in frames] == [0, 1, 2]

    def test_finish_emits_done_frame(self):
        frames = []
        reporter = ProgressReporter(frames.append, min_interval_s=10.0,
                                    clock=ManualClock())
        reporter.finish(FakeCore(cycle=9.0))
        assert frames[-1].phase == "done"

    def test_config_validation_and_factory(self):
        with pytest.raises(ValueError):
            ProgressConfig(interval=0)
        with pytest.raises(ValueError):
            ProgressConfig(min_interval_s=-1.0)
        sink = []
        reporter = ProgressConfig(interval=7).reporter(
            sink.append, workload="w", technique="t")
        assert reporter.interval == 7 and reporter.workload == "w"

    def test_advancing_semantics(self):
        base = {"cycle": 10.0, "instructions": 100}
        assert advancing(base, {"cycle": 11.0, "instructions": 100})
        assert advancing(base, {"cycle": 10.0, "instructions": 101})
        assert not advancing(base, dict(base))
        assert not advancing(base, {"cycle": 9.0, "instructions": 99})
        assert not advancing(None, base)
        assert not advancing(base, None)


# ---------------------------------------------------------------------------
# Core run loops: enabled frames advance; disabled path is identical.
# ---------------------------------------------------------------------------

class TestCoreProgress:
    def _run(self, technique: str, progress=None):
        from repro.harness.runner import run

        return run("PR_KR", technique, scale="tiny", progress=progress)

    @pytest.mark.parametrize("technique", ["inorder", "svr16", "vr64"])
    def test_enabled_run_emits_monotonic_frames(self, technique):
        frames = []
        reporter = ProgressReporter(frames.append, interval=200,
                                    min_interval_s=0.0)
        result = self._run(technique, progress=reporter)
        assert len(frames) >= 3
        cycles = [f.cycle for f in frames]
        instructions = [f.instructions for f in frames]
        assert cycles == sorted(cycles)
        assert instructions == sorted(instructions)
        assert any(f.phase == "measure" for f in frames)
        assert frames[-1].phase == "done"
        assert frames[-1].target_instructions is not None
        assert frames[0].workload == "PR_KR"
        assert result.ipc > 0

    def test_disabled_progress_changes_nothing(self):
        baseline = self._run("svr16")
        with_progress = self._run(
            "svr16", progress=ProgressReporter(lambda _f: None,
                                               interval=500,
                                               min_interval_s=0.0))
        assert with_progress.to_dict() == baseline.to_dict()


# ---------------------------------------------------------------------------
# Executor integration: frames over the result pipe.
# ---------------------------------------------------------------------------

class TestExecutorProgress:
    def test_isolated_run_reports_progress_frames(self):
        from repro.obs.probes import ProbeBus

        bus = ProbeBus()
        seen = []
        bus.subscribe("exec.progress", lambda _n, ev: seen.append(ev))
        spec = RunSpec.make("PR_KR", "svr16", scale="tiny")
        config = ExecConfig(jobs=1, isolate=True, bus=bus,
                            progress=ProgressConfig(interval=200,
                                                    min_interval_s=0.0))
        report = run_cells([spec], config)
        assert report.ok_count == 1
        assert len(seen) >= 3
        cycles = [ev["cycle"] for ev in seen]
        assert cycles == sorted(cycles)
        assert all(ev["workload"] == "PR_KR" for ev in seen)


# ---------------------------------------------------------------------------
# Queue: versions, progress notes, long-poll primitive.
# ---------------------------------------------------------------------------

class TestQueueLongPoll:
    def _submitted(self):
        queue = JobQueue(limit=4)
        job = queue.submit(RunSpec.make("PR_KR", "svr16", scale="tiny"),
                           "tester")
        return queue, job

    def test_queued_job_reports_wait_so_far(self):
        _queue, job = self._submitted()
        time.sleep(0.01)
        out = job.to_dict()
        assert out["state"] == "queued"
        assert out["wait_s"] > 0
        assert "version" in out

    def test_note_progress_bumps_version_and_attaches_frame(self):
        queue, job = self._submitted()
        before = job.version
        queue.next_cell()
        frame = {"cycle": 10.0, "instructions": 500, "ipc": 0.8}
        updated = queue.note_progress(job.key, frame)
        assert [j.job_id for j in updated] == [job.job_id]
        assert job.progress == frame
        assert job.version > before
        assert job.to_dict()["progress"] == frame
        assert queue.note_progress("no-such-key", frame) == []

    def test_wait_for_change_times_out_with_current_state(self):
        queue, job = self._submitted()
        started = time.monotonic()
        result = queue.wait_for_change(job.job_id, job.version,
                                       timeout_s=0.1)
        assert time.monotonic() - started >= 0.1
        assert result is job and result.state == "queued"

    def test_wait_for_change_wakes_on_state_change(self):
        queue, job = self._submitted()
        woken = {}

        def waiter() -> None:
            woken["job"] = queue.wait_for_change(job.job_id, job.version,
                                                 timeout_s=5.0)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        queue.next_cell()                       # queued -> running
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert woken["job"].state == RUNNING

    def test_wait_for_change_unknown_job(self):
        queue, _job = self._submitted()
        assert queue.wait_for_change("job-999", 0, timeout_s=0.0) is None

    def test_stale_version_returns_immediately(self):
        queue, job = self._submitted()
        queue.next_cell()
        started = time.monotonic()
        result = queue.wait_for_change(job.job_id, 0, timeout_s=5.0)
        assert time.monotonic() - started < 1.0
        assert result.state == RUNNING


# ---------------------------------------------------------------------------
# EventBroker / MetricsRing units.
# ---------------------------------------------------------------------------

class TestEventPlumbing:
    def test_publish_stamps_and_fans_out(self):
        broker = EventBroker()
        sub = broker.subscribe()
        broker.publish("job", job_id="job-1", state="queued")
        event = sub.get(timeout_s=1.0)
        assert event["event"] == "job" and event["seq"] == 1
        assert event["job_id"] == "job-1"
        sub.close()
        assert broker.subscriber_count() == 0

    def test_slow_subscriber_drops_oldest(self):
        broker = EventBroker(queue_size=3)
        sub = broker.subscribe()
        for i in range(6):
            broker.publish("tick", n=i)
        assert sub.dropped == 3
        assert [sub.get(0.0)["n"] for _ in range(3)] == [3, 4, 5]

    def test_replay_preseeds_new_subscribers(self):
        broker = EventBroker(replay_size=8)
        for i in range(5):
            broker.publish("tick", n=i)
        sub = broker.subscribe(replay=3)
        assert [sub.get(0.0)["n"] for _ in range(3)] == [2, 3, 4]
        assert sub.get(0.0) is None

    def test_metrics_ring_is_bounded(self):
        ring = MetricsRing(size=4)
        for i in range(10):
            ring.push({"n": i})
        samples = ring.snapshot()
        assert [s["n"] for s in samples] == [6, 7, 8, 9]
        assert [s["n"] for s in ring.snapshot(last=2)] == [8, 9]
        assert len(ring) == 4
        assert all("ts" in s for s in samples)


# ---------------------------------------------------------------------------
# Prometheus exposition.
# ---------------------------------------------------------------------------

class TestPrometheus:
    def test_name_sanitization(self):
        assert prometheus_name("serve.request_ms") == "repro_serve_request_ms"
        assert prometheus_name("a-b/c") == "repro_a_b_c"

    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(7)
        registry.gauge("exec.inflight").set(3)
        hist = registry.histogram("serve.job_run_s")
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        text = prometheus_exposition(
            registry, extra_gauges={"serve.queue_depth": 2.0})
        lines = text.splitlines()
        assert "# TYPE repro_serve_requests counter" in lines
        assert "repro_serve_requests 7" in lines
        assert "# TYPE repro_exec_inflight gauge" in lines
        assert "repro_exec_inflight 3" in lines
        assert "# TYPE repro_serve_job_run_s histogram" in lines
        assert 'repro_serve_job_run_s_bucket{le="+Inf"} 4' in lines
        assert "repro_serve_job_run_s_count 4" in lines
        assert "repro_serve_queue_depth 2" in lines
        # Cumulative buckets never decrease.
        buckets = [int(line.rsplit(" ", 1)[1]) for line in lines
                   if line.startswith("repro_serve_job_run_s_bucket")]
        assert buckets == sorted(buckets)
        assert text.endswith("\n")


# ---------------------------------------------------------------------------
# HTTP end-to-end: long-poll, /events, /metrics negotiation, top.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def live_server(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve-live")
    server = start_server(tmp, retries=0, timeout_s=60.0, queue_limit=16,
                          progress_interval=200, sample_interval_s=0.2)
    yield server
    stop_server(server)


class TestLiveHTTP:
    def test_longpoll_sees_progress_then_verdict(self, live_server):
        client = client_for(live_server)
        job = client.submit("HJ2", "svr16", scale="tiny")
        frames = []
        version = None
        for _ in range(100):
            payload = client.job(job["job_id"], wait_s=5.0,
                                 version=version)
            state = payload["job"]["state"]
            if payload["job"].get("progress"):
                frames.append(payload["job"]["progress"])
            if state in ("ok", "failed", "quarantined"):
                break
            version = payload["job"].get("version")
        assert payload["job"]["state"] == "ok"
        distinct = {(f["cycle"], f["instructions"]) for f in frames}
        assert len(distinct) >= 3
        cycles = [f["cycle"] for f in frames]
        assert cycles == sorted(cycles)

    def test_longpoll_timeout_is_200_with_current_state(self, live_server):
        client = client_for(live_server)
        job = client.submit("PR_KR", "svr16", scale="tiny")
        final = client.wait(job["job_id"], timeout_s=60.0)
        # Terminal job: wait is answered immediately with the state.
        payload = client.job(job["job_id"], wait_s=0.05,
                             version=final["job"]["version"])
        assert payload["job"]["state"] == "ok"

    def test_events_stream_delivers_job_lifecycle(self, live_server):
        client = client_for(live_server)
        events = []
        done = threading.Event()

        def consume() -> None:
            for event in client.events(replay=0):
                events.append(event)
                if (event["event"] == "job"
                        and event.get("state") == "ok"
                        and event.get("job_id") == job_box.get("id")):
                    break
            done.set()

        job_box: dict = {}
        thread = threading.Thread(target=consume, daemon=True)
        thread.start()
        time.sleep(0.2)                       # subscribe before submit
        job = client.submit("Camel", "svr16", scale="tiny")
        job_box["id"] = job["job_id"]
        assert done.wait(60.0)
        states = [e.get("state") for e in events
                  if e["event"] == "job"
                  and e.get("job_id") == job["job_id"]]
        assert states[0] == "queued"
        assert "running" in states
        assert states[-1] == "ok"
        assert any(e["event"] == "progress" for e in events)
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)

    def test_events_limit_closes_stream(self, live_server):
        client = client_for(live_server)
        events = list(client.events(limit=2, replay=2))
        assert len(events) == 2

    def test_client_disconnect_leaves_server_healthy(self, live_server):
        # Open /events raw, read a little, then slam the socket shut.
        sock = socket.create_connection(
            ("127.0.0.1", live_server.port), timeout=5.0)
        sock.sendall(b"GET /events?replay=5 HTTP/1.1\r\n"
                     b"Host: localhost\r\nAccept: */*\r\n\r\n")
        sock.recv(1024)
        sock.close()
        client = client_for(live_server)
        job = client.submit("PR_KR", "inorder", scale="tiny")
        final = client.wait(job["job_id"], timeout_s=60.0)
        assert final["job"]["state"] == "ok"
        deadline = time.monotonic() + 5.0
        while (live_server.events.subscriber_count() > 0
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert live_server.events.subscriber_count() == 0

    def test_metrics_content_negotiation(self, live_server):
        client = client_for(live_server)
        as_json = client.metrics()
        assert isinstance(as_json, dict)          # default stays JSON
        assert "serve.requests" in as_json
        text = client.metrics_text()
        assert "# TYPE repro_serve_requests counter" in text
        assert "repro_serve_queue_depth" in text
        # Accept-header negotiation, not just the query param.
        request = urllib.request.Request(
            f"http://127.0.0.1:{live_server.port}/metrics",
            headers={"Accept": "text/plain"})
        with urllib.request.urlopen(request, timeout=10.0) as resp:
            assert "text/plain" in resp.headers["Content-Type"]
            assert b"repro_serve_requests" in resp.read()

    def test_metrics_history_accumulates(self, live_server):
        client = client_for(live_server)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if len(client.history()) >= 2:
                break
            time.sleep(0.2)
        samples = client.history()
        assert len(samples) >= 2
        assert all("queue_depth" in s and "busy_workers" in s
                   for s in samples)
        assert len(client.history(last=1)) == 1

    def test_worker_snapshot_in_health_carries_progress_key(self,
                                                            live_server):
        health = client_for(live_server).health()
        assert all("progress" in w for w in health["workers"])
        assert "events_published" in health

    def test_top_once_renders_live_server(self, live_server, capsys):
        import io

        out = io.StringIO()
        assert run_top(url=f"http://127.0.0.1:{live_server.port}",
                       once=True, out=out) == 0
        text = out.getvalue()
        assert "repro top" in text and "workers:" in text
        assert "\x1b" not in text                 # --once stays plain


# ---------------------------------------------------------------------------
# repro top rendering units.
# ---------------------------------------------------------------------------

class TestTopRendering:
    def test_progress_bar_and_fraction(self):
        assert progress_bar(0.0, width=4) == "[....]"
        assert progress_bar(0.5, width=4) == "[##..]"
        assert progress_bar(2.0, width=4) == "[####]"
        frame = {"instructions": 250, "target_instructions": 1000}
        assert frame_fraction(frame) == 0.25
        assert frame_fraction({"instructions": 5}) == 0.0

    def test_frame_eta_linear(self):
        frame = {"instructions": 250, "target_instructions": 1000,
                 "wall_s": 10.0}
        assert frame_eta_s(frame) == pytest.approx(30.0)
        assert frame_eta_s({"instructions": 0, "target_instructions": 10,
                            "wall_s": 5.0}) is None

    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert len(sparkline([1.0, 2.0, 3.0])) == 3
        assert sparkline([0.0, 0.0]) == "▁▁"

    def test_render_server_view_smoke(self):
        frame = {"cycle": 1000.0, "instructions": 500,
                 "target_instructions": 1000, "ipc": 0.75, "wall_s": 2.0}
        health = {"status": "ok", "uptime_s": 12.0, "queue_depth": 1,
                  "inflight": 2, "worker_restarts": 0,
                  "store": {"entries": 3}, "events_published": 9,
                  "workers": [{"worker": 0, "pid": 123, "state": "busy",
                               "jobs_done": 2, "running": "PR_KR/svr16",
                               "progress": frame}]}
        jobs = [{"job_id": "job-1", "workload": "PR_KR",
                 "technique": "svr16", "state": "running",
                 "wait_s": 0.5, "progress": frame}]
        history = [{"busy_workers": 1, "queue_depth": 0},
                   {"busy_workers": 2, "queue_depth": 1}]
        text = render_server_view(health, jobs, history, "http://x")
        assert "PR_KR/svr16" in text and "50%" in text
        assert "history (2 samples)" in text

    def test_journal_mode(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        journal.write_text(
            '{"event": "cell", "workload": "PR_KR", "technique": "svr16",'
            ' "status": "ok", "attempts": 1, "elapsed_s": 1.5,'
            ' "result": {"ipc": 1.25}}\n'
            '{"event": "cell", "workload": "Camel", "technique": "vr64",'
            ' "status": "failed", "attempts": 2, "elapsed_s": 3.0,'
            ' "failure": {"kind": "hang", "progress":'
            ' {"cycle": 900.0, "instructions": 100,'
            ' "target_instructions": 400}}}\n'
            "not json\n", encoding="utf-8")
        import io

        out = io.StringIO()
        assert run_top(journal=str(journal), once=True, out=out) == 0
        text = out.getvalue()
        assert "1 ok, 1 failed" in text
        assert "ipc 1.250" in text
        assert "hang @ cycle 900 (25% done)" in text

    def test_run_top_requires_exactly_one_source(self):
        import io

        with pytest.raises(ValueError):
            run_top(out=io.StringIO())

    def test_refresh_loop_paints_and_stops(self, tmp_path):
        import io

        journal = tmp_path / "empty.jsonl"
        journal.write_text("", encoding="utf-8")
        out = io.StringIO()
        naps = []
        assert run_top(journal=str(journal), interval_s=0.01,
                       iterations=3, out=out, sleep=naps.append) == 0
        assert out.getvalue().count("\x1b[H") == 3
        assert naps == [0.01, 0.01]


# ---------------------------------------------------------------------------
# Dashboard live-history section.
# ---------------------------------------------------------------------------

class TestDashboardHistory:
    def test_report_renders_live_history(self, tmp_path):
        from repro.harness.dashboard import generate_report

        ledger = tmp_path / "ledger.jsonl"
        lines = ['{"event": "serve.job", "state": "ok", "wait_s": 0.1,'
                 ' "run_s": 1.0}']
        for i in range(4):
            lines.append(
                '{"event": "serve.sample", "queue_depth": %d,'
                ' "busy_workers": %d, "inflight": 1, "jobs_ok": %d,'
                ' "jobs_failed": 0, "progress_frames": %d}'
                % (i, i % 2, i, i * 10))
        ledger.write_text("\n".join(lines) + "\n", encoding="utf-8")
        out = tmp_path / "report.html"
        _path, data = generate_report(journals=[ledger], out_path=out)
        assert len(data["service"]["samples"]) == 4
        html = out.read_text(encoding="utf-8")
        assert "Live history" in html
        assert "progress frames (cumulative)" in html
