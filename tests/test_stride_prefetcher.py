"""Unit tests for the baseline L1 stride prefetcher."""

from repro.memory.stride_prefetcher import StridePrefetcher


def train_stream(pf, pc, start, stride, count):
    requests = []
    for i in range(count):
        requests.append(pf.train(pc, start + i * stride))
    return requests


class TestDetection:
    def test_no_prefetch_before_confidence(self):
        pf = StridePrefetcher()
        assert pf.train(1, 0) == []
        assert pf.train(1, 64) == []     # first stride observation
        assert pf.train(1, 128) == []    # confidence builds

    def test_confident_stream_prefetches(self):
        pf = StridePrefetcher()
        requests = train_stream(pf, 1, 0, 64, 8)
        assert any(requests), "stream should eventually prefetch"

    def test_requests_are_ahead_of_stream(self):
        pf = StridePrefetcher(distance=4)
        requests = train_stream(pf, 1, 0, 64, 8)
        last_addr = 7 * 64
        for req in requests[-1]:
            assert req >= last_addr + 4 * 64

    def test_negative_stride_supported(self):
        pf = StridePrefetcher()
        requests = train_stream(pf, 1, 64 * 100, -64, 8)
        assert any(requests)
        for req in requests[-1]:
            assert req < 64 * (100 - 7)

    def test_zero_stride_never_prefetches(self):
        pf = StridePrefetcher()
        requests = train_stream(pf, 1, 4096, 0, 10)
        assert not any(requests)

    def test_stride_change_resets_confidence(self):
        pf = StridePrefetcher()
        train_stream(pf, 1, 0, 64, 6)
        assert pf.train(1, 10_000) == []          # discontinuity
        assert pf.train(1, 10_000 + 8) == []      # new stride, low conf

    def test_small_stride_dedupes_lines(self):
        pf = StridePrefetcher(degree=2)
        requests = train_stream(pf, 1, 0, 8, 12)
        lines = [r // 64 for r in requests[-1]]
        assert len(lines) == len(set(lines))

    def test_independent_pcs_tracked_separately(self):
        pf = StridePrefetcher()
        train_stream(pf, 1, 0, 64, 8)
        assert pf.train(2, 1 << 20) == []   # fresh PC starts cold

    def test_table_capacity_evicts(self):
        pf = StridePrefetcher(table_entries=2)
        train_stream(pf, 1, 0, 64, 6)
        pf.train(2, 0)
        pf.train(3, 0)                      # evicts PC 1
        # PC 1 must retrain from scratch: no immediate prefetch.
        assert pf.train(1, 64 * 100) == []

    def test_issued_counter(self):
        pf = StridePrefetcher()
        train_stream(pf, 1, 0, 64, 10)
        assert pf.issued > 0
