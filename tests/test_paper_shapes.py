"""End-to-end checks of the paper's headline qualitative results.

These run at 'bench' scale on representative workloads and assert the
*shape* of each claim (who wins, roughly by how much) rather than absolute
numbers — per DESIGN.md's substitution contract.
"""

import pytest

from repro.harness.report import harmonic_mean
from repro.harness.runner import run, technique

pytestmark = pytest.mark.shapes


@pytest.fixture(scope="module")
def results():
    """One shared matrix of bench-scale runs for all shape assertions."""
    workloads = ("PR_UR", "BFS_KR", "CC_UR", "Camel", "Kangr", "Randacc",
                 "HJ2", "HJ8", "NAS-IS")
    techs = ("inorder", "imp", "ooo", "svr16", "svr64")
    matrix = {}
    for w in workloads:
        matrix[w] = {t: run(w, t, scale="bench") for t in techs}
    return matrix


def speedups(matrix, tech):
    return [row[tech].ipc / row["inorder"].ipc for row in matrix.values()]


class TestHeadline:
    def test_svr16_beats_inorder_by_large_factor(self, results):
        """Paper: 3.2x harmonic-mean speedup for SVR-16."""
        hmean = harmonic_mean(speedups(results, "svr16"))
        assert hmean > 2.0

    def test_svr16_beats_ooo(self, results):
        """Paper: 1.3x over a full out-of-order core."""
        svr = harmonic_mean(speedups(results, "svr16"))
        ooo = harmonic_mean(speedups(results, "ooo"))
        assert svr > ooo

    def test_svr16_beats_imp(self, results):
        """Paper: 1.4x over IMP on the full suite."""
        svr = harmonic_mean(speedups(results, "svr16"))
        imp = harmonic_mean(speedups(results, "imp"))
        assert svr > imp * 1.15

    def test_ooo_beats_inorder(self, results):
        """Fig 3: the OoO core extracts MLP the in-order core cannot."""
        assert harmonic_mean(speedups(results, "ooo")) > 1.5

    def test_svr64_beats_svr16_on_average(self, results):
        """Longer vectors overlap more misses (Fig 11 trend)."""
        assert (harmonic_mean(speedups(results, "svr64"))
                > harmonic_mean(speedups(results, "svr16")))


class TestEnergy:
    def test_svr_is_most_energy_efficient(self, results):
        """Paper: SVR is always the most efficient technique.

        Deviation (recorded in EXPERIMENTS.md): on the few workloads where
        IMP is both accurate *and* faster than SVR (PR/IS-style long
        stride-indirect loops), our IMP lands within a few percent of SVR
        because both prefetch the same lines and IMP pays less static
        energy; we assert SVR wins everywhere else and never loses by more
        than 10%.
        """
        for w, row in results.items():
            svr = row["svr16"].energy_per_instruction_nj
            for other in ("inorder", "ooo"):
                assert svr < row[other].energy_per_instruction_nj, (w, other)
            assert svr < 1.10 * row["imp"].energy_per_instruction_nj, w

    def test_svr_most_efficient_on_average(self, results):
        for other in ("inorder", "imp", "ooo"):
            svr_mean = sum(r["svr16"].energy_per_instruction_nj
                           for r in results.values())
            other_mean = sum(r[other].energy_per_instruction_nj
                             for r in results.values())
            assert svr_mean < other_mean, other

    def test_svr_roughly_halves_energy(self, results):
        """Paper: 53% / 49% lower energy than in-order / OoO."""
        ratios = [row["svr16"].energy_per_instruction_nj
                  / row["inorder"].energy_per_instruction_nj
                  for row in results.values()]
        assert sum(ratios) / len(ratios) < 0.65

    def test_ooo_usually_beats_inorder_on_system_energy(self, results):
        """Section VI-B: faster execution amortises system static power."""
        wins = sum(1 for row in results.values()
                   if row["ooo"].energy_per_instruction_nj
                   < row["inorder"].energy_per_instruction_nj)
        assert wins >= len(results) / 2


class TestImpPattern:
    def test_imp_fails_on_hashed_and_masked_patterns(self, results):
        """Paper: HJ2, HJ8, Kangaroo, Randacc see no IMP benefit."""
        for w in ("HJ2", "HJ8", "Kangr", "Randacc"):
            imp = results[w]["imp"].ipc
            base = results[w]["inorder"].ipc
            assert imp < base * 1.1, w

    def test_imp_beats_svr_on_simple_long_stride_indirect(self, results):
        """Paper: IMP outperforms SVR on PR and NAS-IS (overlaps compute)."""
        for w in ("PR_UR", "NAS-IS"):
            assert results[w]["imp"].ipc > results[w]["svr16"].ipc, w

    def test_svr_covers_what_imp_cannot(self, results):
        for w in ("Kangr", "Randacc", "HJ2"):
            assert results[w]["svr16"].ipc > results[w]["imp"].ipc * 1.5, w


class TestPerWorkloadQuirks:
    def test_hj8_gains_least_from_svr(self, results):
        """Section VI-D: control divergence leaves HJ8 with (almost) no
        speedup — it must be the smallest SVR-16 gain in the suite."""
        gains = {w: row["svr16"].ipc / row["inorder"].ipc
                 for w, row in results.items()}
        assert gains["HJ8"] == min(gains.values())
        assert gains["HJ8"] < 1.5

    def test_inorder_cpi_is_memory_dominated(self, results):
        """Fig 3: the in-order core spends most cycles on DRAM stalls."""
        for w in ("PR_UR", "Camel", "Randacc"):
            stack = results[w]["inorder"].cpi_stack()
            assert stack["mem-dram"] > 0.5 * results[w]["inorder"].cpi, w

    def test_svr_prefetch_accuracy_high(self, results):
        """Fig 13a: tournament-throttled SVR is extremely accurate."""
        accs = [row["svr16"].svr_accuracy for row in results.values()]
        assert sum(accs) / len(accs) > 0.75


class TestSpecOverhead:
    def test_spec_overhead_small(self):
        """Fig 14: ~1% average overhead on regular code."""
        names = ("bwaves", "namd", "lbm", "leela", "xz", "wrf")
        ratios = []
        for name in names:
            base = run(name, "inorder", scale="bench")
            svr = run(name, "svr16", scale="bench")
            ratios.append(svr.ipc / base.ipc)
        hmean = harmonic_mean(ratios)
        assert hmean > 0.90
        assert hmean < 1.10
