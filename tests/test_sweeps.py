"""Tests for the generic parameter-sweep utility and the JSON export."""

import json

import pytest

from repro.harness.runner import run, technique
from repro.harness.sweeps import SweepAxis, render_sweep, sweep


class TestSweepAxis:
    def test_values_frozen_as_tuple(self):
        axis = SweepAxis("memory.l1_mshrs", [1, 2])
        assert axis.values == (1, 2)


class TestSweep:
    def test_single_axis_memory_sweep(self):
        out = sweep(("Camel",), "svr16",
                    [SweepAxis("memory.l1_mshrs", (2, 16))],
                    scale="tiny")
        assert set(out) == {(2,), (16,)}
        assert out[(16,)] >= out[(2,)]     # more MSHRs never hurt

    def test_two_axis_cross_product(self):
        out = sweep(("Camel",), "svr16",
                    [SweepAxis("svr.vector_length", (4, 16)),
                     SweepAxis("memory.l1_mshrs", (4, 16))],
                    scale="tiny")
        assert len(out) == 4
        assert (16, 16) in out

    def test_unnormalised_metric(self):
        out = sweep(("Camel",), "inorder",
                    [SweepAxis("memory.dram_bandwidth_gbps", (12.5, 50.0))],
                    metric="cpi", scale="tiny", normalise=False)
        assert out[(12.5,)] >= out[(50.0,)]   # less bandwidth, higher CPI

    def test_core_config_axis(self):
        out = sweep(("Camel",), "ooo",
                    [SweepAxis("core_config.rob_entries", (4, 64))],
                    scale="tiny")
        assert out[(64,)] > out[(4,)]

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError, match="unknown config field"):
            sweep(("Camel",), "svr16",
                  [SweepAxis("memory.flux_capacitors", (1,))], scale="tiny")

    def test_svr_path_on_non_svr_technique_rejected(self):
        with pytest.raises(ValueError, match="has no"):
            sweep(("Camel",), "inorder",
                  [SweepAxis("svr.vector_length", (8,))], scale="tiny")

    def test_no_axes_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            sweep(("Camel",), "svr16", [], scale="tiny")

    def test_render(self):
        out = sweep(("Camel",), "svr16",
                    [SweepAxis("memory.l1_mshrs", (2, 16))], scale="tiny")
        text = render_sweep(out, [SweepAxis("memory.l1_mshrs", (2, 16))])
        assert "memory.l1_mshrs" in text and "16" in text


class TestJsonExport:
    def test_round_trips_through_json(self):
        result = run("Camel", "svr16", scale="tiny")
        data = json.loads(json.dumps(result.to_dict()))
        assert data["workload"] == "Camel"
        assert data["technique"] == "svr16"
        assert data["cpi"] > 0
        assert data["svr"]["prm_rounds"] > 0
        assert "vr" not in data

    def test_vr_runs_export_vr_block(self):
        result = run("Camel", "vr64", scale="tiny")
        data = result.to_dict()
        assert "svr" not in data
        assert data["vr"]["episodes"] >= 0

    def test_stack_approximates_cpi_in_export(self):
        """The stack is a decomposition: it can exceed CPI slightly when
        stall causes overlap (branch penalty shadowing a memory stall)."""
        result = run("Camel", "inorder", scale="tiny")
        data = result.to_dict()
        total = sum(data["cpi_stack"].values())
        assert data["cpi"] <= total <= data["cpi"] * 1.15
