"""Broad integration sweep: every registry workload simulates sanely on
every core family at tiny scale."""

import pytest

from repro.harness.runner import run
from repro.workloads.registry import (
    GAP_WORKLOADS,
    HPC_WORKLOADS,
    build_workload,
)


class TestGapMatrix:
    @pytest.mark.parametrize("name", GAP_WORKLOADS)
    def test_runs_on_svr16(self, name):
        result = run(name, "svr16", scale="tiny", warmup=500, measure=1500)
        assert result.core.instructions > 0
        assert 0.1 < result.cpi < 50.0
        # SVR triggered on every graph kernel/input combination.
        assert result.svr.prm_rounds > 0, name

    @pytest.mark.parametrize("kernel", ["PR", "CC"])
    def test_svr_speedup_on_every_input(self, kernel):
        """The gather-heavy kernels speed up on all five inputs."""
        for graph_input in ("KR", "UR", "LJN", "TW", "ORK"):
            name = f"{kernel}_{graph_input}"
            base = run(name, "inorder", scale="tiny")
            svr = run(name, "svr16", scale="tiny")
            assert svr.ipc > base.ipc, name


class TestHpcMatrix:
    @pytest.mark.parametrize("name", HPC_WORKLOADS)
    def test_runs_on_all_cores(self, name):
        for tech in ("inorder", "ooo", "svr16"):
            result = run(name, tech, scale="tiny", warmup=400, measure=1200)
            assert result.core.instructions == 1200, (name, tech)

    @pytest.mark.parametrize("name", HPC_WORKLOADS)
    def test_workload_names_consistent(self, name):
        workload = build_workload(name, "tiny")
        assert workload.name == name
        assert workload.category == "hpc"


class TestCrossCoreConsistency:
    """The same program must compute the same values on every core."""

    @pytest.mark.parametrize("name", ["Camel", "NAS-IS", "HJ2"])
    def test_architectural_state_core_independent(self, name):
        from repro.cores.functional import FunctionalCore
        from repro.cores.ooo import OutOfOrderCore
        from repro.cores.inorder import InOrderCore
        from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy

        snapshots = []
        for kind in ("functional", "inorder", "ooo"):
            workload = build_workload(name, "tiny")
            if kind == "functional":
                core = FunctionalCore(workload.program, workload.memory)
                core.run(3000)
            else:
                hierarchy = MemoryHierarchy(workload.memory, MemoryConfig())
                cls = InOrderCore if kind == "inorder" else OutOfOrderCore
                core = cls(workload.program, workload.memory, hierarchy)
                core.run(3000)
            snapshots.append((core.pc, core.regs.snapshot()))
        assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_svr_never_changes_architectural_state(self):
        from repro.cores.inorder import InOrderCore
        from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy
        from repro.svr.config import SVRConfig
        from repro.svr.unit import ScalarVectorUnit

        plain_wl = build_workload("NAS-IS", "tiny")
        hier = MemoryHierarchy(plain_wl.memory, MemoryConfig())
        plain = InOrderCore(plain_wl.program, plain_wl.memory, hier)
        plain.run(5000)

        svr_wl = build_workload("NAS-IS", "tiny")
        hier2 = MemoryHierarchy(svr_wl.memory, MemoryConfig())
        svr_core = InOrderCore(svr_wl.program, svr_wl.memory, hier2,
                               svr=ScalarVectorUnit(SVRConfig()))
        svr_core.run(5000)

        assert plain.pc == svr_core.pc
        assert plain.regs.snapshot() == svr_core.regs.snapshot()
        hist = svr_wl.meta["hist"]
        bins = svr_wl.meta["bins"]
        assert (plain_wl.memory.read_array(hist, bins).tolist()
                == svr_wl.memory.read_array(hist, bins).tolist())


class TestProgramTools:
    def test_disassemble_contains_labels_and_ops(self):
        workload = build_workload("Camel", "tiny")
        text = workload.program.disassemble()
        assert "loop:" in text
        assert "ld" in text and "-> loop" in text

    def test_disassemble_window(self):
        workload = build_workload("Camel", "tiny")
        text = workload.program.disassemble(0, 3)
        assert text.count("\n") <= 3

    def test_summary_text(self):
        result = run("Camel", "svr16", scale="tiny")
        text = result.summary()
        assert "Camel on svr16" in text
        assert "SVR:" in text and "CPI stack" in text
