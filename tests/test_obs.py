"""Tests for the observability layer: probe bus, metrics registry,
structured run logs and the Chrome trace exporter."""

import json

import pytest

from repro.harness.runner import run, technique
from repro.obs import (
    ChromeTraceBuilder,
    Histogram,
    MetricsRegistry,
    ProbeBus,
    RunLog,
    RunObservation,
    SelfProfile,
    install_standard_metrics,
    make_record,
    validate_trace,
)


class TestProbeBus:
    def test_probe_disabled_without_subscribers(self):
        bus = ProbeBus()
        probe = bus.probe("core.commit")
        assert probe.enabled is False

    def test_probe_is_get_or_create(self):
        bus = ProbeBus()
        assert bus.probe("x") is bus.probe("x")

    def test_subscriber_receives_name_and_event(self):
        bus = ProbeBus()
        seen = []
        bus.subscribe("mem.load", lambda name, ev: seen.append((name, ev)))
        probe = bus.probe("mem.load")
        assert probe.enabled
        probe.emit(addr=64, level="l1")
        assert seen == [("mem.load", {"addr": 64, "level": "l1"})]

    def test_cancel_disables_probe(self):
        bus = ProbeBus()
        sub = bus.subscribe("a.b", lambda *_: None)
        assert bus.probe("a.b").enabled
        sub.cancel()
        assert not bus.probe("a.b").enabled
        sub.cancel()               # idempotent

    def test_glob_matches_existing_and_future_probes(self):
        bus = ProbeBus()
        early = bus.probe("svr.prm_enter")
        seen = []
        sub = bus.subscribe("svr.*", lambda name, _ev: seen.append(name))
        late = bus.probe("svr.prm_exit")
        assert early.enabled and late.enabled
        early.emit()
        late.emit()
        assert seen == ["svr.prm_enter", "svr.prm_exit"]
        sub.cancel()
        assert not early.enabled and not late.enabled

    def test_glob_does_not_match_other_families(self):
        bus = ProbeBus()
        bus.subscribe("mem.*", lambda *_: None)
        assert not bus.probe("dram.access").enabled

    def test_second_subscriber_survives_first_cancel(self):
        bus = ProbeBus()
        seen = []
        first = bus.subscribe("p", lambda *_: seen.append("first"))
        bus.subscribe("p", lambda *_: seen.append("second"))
        first.cancel()
        assert bus.probe("p").enabled
        bus.probe("p").emit()
        assert seen == ["second"]

    def test_clear_subscribers(self):
        bus = ProbeBus()
        bus.subscribe("a", lambda *_: None)
        bus.subscribe("b.*", lambda *_: None)
        bus.probe("b.c")
        bus.clear_subscribers()
        assert not bus.probe("a").enabled
        assert not bus.probe("b.c").enabled
        assert not bus.probe("b.d").enabled  # pattern gone too

    def test_names_sorted(self):
        bus = ProbeBus()
        bus.probe("z")
        bus.probe("a")
        assert bus.names() == ["a", "z"]


class TestHistogram:
    @pytest.mark.parametrize("value,bucket", [
        (0.0, 0), (0.5, 0), (1, 1), (1.9, 1), (2, 2), (3, 2),
        (4, 3), (16, 5), (100, 7), (128, 8),
    ])
    def test_bucket_of(self, value, bucket):
        assert Histogram.bucket_of(value) == bucket

    def test_bucket_labels(self):
        assert Histogram.bucket_label(0) == "[0,1)"
        assert Histogram.bucket_label(1) == "[1,2)"
        assert Histogram.bucket_label(5) == "[16,32)"

    def test_snapshot(self):
        hist = Histogram()
        for value in (1, 2, 3, 100):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 1 and snap["max"] == 100
        assert snap["mean"] == pytest.approx(26.5)
        assert snap["buckets"] == {"[1,2)": 1, "[2,4)": 2, "[64,128)": 1}

    def test_empty_snapshot(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert snap["mean"] == 0.0

    def test_bucket_of_zero_and_sub_one(self):
        assert Histogram.bucket_of(0) == 0
        assert Histogram.bucket_of(0.0) == 0
        assert Histogram.bucket_of(1e-9) == 0
        assert Histogram.bucket_of(0.999) == 0
        assert Histogram.bucket_label(0) == "[0,1)"

    def test_bucket_of_very_large_values(self):
        assert Histogram.bucket_of(2 ** 40) == 41
        assert Histogram.bucket_of(2 ** 40 - 1) == 40
        assert Histogram.bucket_of(1.5e15) == 51
        assert Histogram.bucket_label(41) == f"[{2 ** 40},{2 ** 41})"

    def test_observe_extremes_round_trip(self):
        hist = Histogram()
        hist.observe(0)
        hist.observe(0.25)
        hist.observe(2 ** 40)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 0 and snap["max"] == 2 ** 40
        assert snap["buckets"] == {"[0,1)": 2,
                                   f"[{2 ** 40},{2 ** 41})": 1}

    def test_mean_of_empty_histogram(self):
        assert Histogram().mean == 0.0


class TestMetricsRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        assert reg.counter("a").value == 3
        assert len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_snapshot_sorted_and_plain(self):
        reg = MetricsRegistry()
        reg.counter("z.count").inc()
        reg.gauge("m.level").set(2.5)
        reg.histogram("a.hist").observe(4)
        snap = reg.snapshot()
        assert list(snap) == ["a.hist", "m.level", "z.count"]
        assert snap["z.count"] == 1
        assert snap["m.level"] == 2.5
        assert snap["a.hist"]["count"] == 1
        json.dumps(snap)           # JSON-ready


class TestStandardMetrics:
    def test_wiring_from_synthetic_events(self):
        bus = ProbeBus()
        reg = MetricsRegistry()
        subs = install_standard_metrics(bus, reg)
        bus.probe("core.commit").emit(pc=0, op="ld", opclass="LOAD",
                                      issue=0.0, completion=2.0, level="l1")
        bus.probe("mem.load").emit(addr=0, pc=0, time=0.0, level="dram",
                                   completion=104.0, latency=104.0)
        bus.probe("svr.prm_enter").emit(pc=4, time=10.0, length=16,
                                        stride=8, addr=0)
        bus.probe("svr.prm_exit").emit(cause="hslr", time=40.0,
                                       duration=30.0, instructions=10, pc=4)
        bus.probe("svr.svi").emit(pc=4, time=12.0, lanes=16)
        snap = reg.snapshot()
        assert snap["core.instructions"] == 1
        assert snap["mem.loads"] == 1
        assert snap["mem.loads.dram"] == 1
        assert snap["mem.load.latency"]["buckets"] == {"[64,128)": 1}
        assert snap["svr.prm.rounds"] == 1
        assert snap["svr.prm.vector_length"]["buckets"] == {"[16,32)": 1}
        assert snap["svr.prm.terminations.hslr"] == 1
        assert snap["svr.svi.lanes"] == 16
        for sub in subs:
            sub.cancel()
        assert not bus.probe("core.commit").enabled

    def test_exec_cell_counters(self):
        bus = ProbeBus()
        reg = MetricsRegistry()
        install_standard_metrics(bus, reg)
        cell = bus.probe("exec.cell")
        cell.emit(key="k1", workload="Camel", technique="svr16",
                  status="ok", cached=False, attempts=1, elapsed_s=1.5)
        cell.emit(key="k2", workload="Camel", technique="svr16",
                  status="ok", cached=True, attempts=1, elapsed_s=0.0)
        snap = reg.snapshot()
        assert snap["exec.cells"] == 2
        assert snap["exec.cells.cached"] == 1
        # Only the actually-executed cell lands in the latency histogram.
        assert snap["exec.cell.elapsed_s"]["count"] == 1
        assert snap["exec.cell.elapsed_s"]["buckets"] == {"[1,2)": 1}

    def test_exec_failure_retry_timeout_counters(self):
        bus = ProbeBus()
        reg = MetricsRegistry()
        install_standard_metrics(bus, reg)
        bus.probe("exec.failure").emit(
            key="k", workload="Camel", technique="svr16", kind="hang",
            message="timeout", attempts=2)
        bus.probe("exec.failure").emit(
            key="k2", workload="HJ2", technique="svr16", kind="crash",
            message="boom", attempts=1)
        bus.probe("exec.retry").emit(key="k", workload="Camel",
                                     technique="svr16", attempt=1,
                                     kind="hang", delay_s=0.25)
        bus.probe("exec.timeout").emit(key="k", workload="Camel",
                                       technique="svr16", attempt=1,
                                       timeout_s=30.0)
        snap = reg.snapshot()
        assert snap["exec.failures"] == 2
        assert snap["exec.failures.hang"] == 1
        assert snap["exec.failures.crash"] == 1
        assert snap["exec.retries"] == 1
        assert snap["exec.timeouts"] == 1

    def test_watchdog_trip_counters(self):
        bus = ProbeBus()
        reg = MetricsRegistry()
        install_standard_metrics(bus, reg)
        bus.probe("core.watchdog").emit(kind="cycles", cycle=1e9, pc=4)
        bus.probe("core.watchdog").emit(kind="cycles", cycle=2e9, pc=8)
        bus.probe("core.watchdog").emit(kind="instructions", cycle=5.0,
                                        pc=12)
        snap = reg.snapshot()
        assert snap["core.watchdog_trips"] == 3
        assert snap["core.watchdog_trips.cycles"] == 2
        assert snap["core.watchdog_trips.instructions"] == 1


class TestRunLog:
    def test_round_trip(self, tmp_path):
        log = RunLog(tmp_path / "nested" / "session.jsonl")
        log.append(make_record("run", workload="Camel", cpi=1.9))
        log.append(make_record("figure", name="fig1"))
        records = log.read()
        assert len(records) == 2
        assert records[0]["schema"] == 2
        assert records[0]["kind"] == "run"
        assert records[0]["workload"] == "Camel"
        assert records[1]["name"] == "fig1"
        assert "timestamp" in records[0]

    def test_read_missing_file(self, tmp_path):
        assert RunLog(tmp_path / "absent.jsonl").read() == []

    def test_timestamps_are_utc_with_fractional_seconds(self):
        import re
        import time

        before = time.gmtime(time.time() - 2)
        record = make_record("run")
        stamp = record["timestamp"]
        # Explicit Z suffix, never a local offset; microsecond digits so
        # same-second records stay distinguishable.
        assert re.fullmatch(
            r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{6}Z", stamp)
        parsed = time.strptime(stamp.split(".")[0] + "Z",
                               "%Y-%m-%dT%H:%M:%SZ")
        assert time.mktime(parsed) >= time.mktime(before)

    def test_records_carry_seq_and_pid(self):
        import os

        a = make_record("run")
        b = make_record("run")
        assert b["seq"] == a["seq"] + 1
        assert a["pid"] == os.getpid()

    def test_append_holds_one_open_handle(self, tmp_path):
        log = RunLog(tmp_path / "session.jsonl")
        log.append(make_record("run", n=1))
        handle = log._fh
        assert handle is not None and not handle.closed
        log.append(make_record("run", n=2))
        assert log._fh is handle          # reused, not reopened
        log.close()
        assert handle.closed
        # Appending after close transparently reopens.
        log.append(make_record("run", n=3))
        log.close()
        assert len(log.read()) == 3

    def test_context_manager_closes(self, tmp_path):
        with RunLog(tmp_path / "session.jsonl") as log:
            log.append(make_record("run"))
            handle = log._fh
        assert handle.closed

    def test_read_skips_torn_final_line(self, tmp_path):
        path = tmp_path / "session.jsonl"
        log = RunLog(path)
        log.append(make_record("run", n=1))
        log.append(make_record("run", n=2))
        log.close()
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"schema": 2, "kind": "ru')   # killed mid-append
        records = log.read()
        assert [r["n"] for r in records] == [1, 2]

    def test_read_raises_on_mid_file_corruption(self, tmp_path):
        import json as json_mod

        import pytest

        path = tmp_path / "session.jsonl"
        path.write_text('{"ok": 1}\nnot json at all\n{"ok": 2}\n',
                        encoding="utf-8")
        with pytest.raises(json_mod.JSONDecodeError):
            RunLog(path).read()


class TestSelfProfile:
    def test_sections_accumulate(self):
        profile = SelfProfile()
        with profile.section("measure"):
            pass
        with profile.section("measure"):
            pass
        with profile.section("build"):
            pass
        snap = profile.snapshot()
        assert list(snap) == ["build", "measure"]
        assert all(v >= 0.0 for v in snap.values())


class TestChromeTrace:
    def _emit_episode(self, bus):
        bus.probe("svr.prm_enter").emit(pc=4, time=100.0, length=16,
                                        stride=8, addr=0)
        bus.probe("svr.svi").emit(pc=4, time=105.0, lanes=16)
        bus.probe("dram.access").emit(time=106.0, start=106.0,
                                      completion=196.0)
        bus.probe("svr.prm_exit").emit(cause="hslr", time=130.0,
                                       duration=30.0, instructions=10, pc=4)

    def test_episode_becomes_complete_slice(self):
        bus = ProbeBus()
        builder = ChromeTraceBuilder()
        builder.attach(bus)
        self._emit_episode(bus)
        builder.detach()
        trace = builder.to_dict()
        assert validate_trace(trace) == []
        slices = [ev for ev in trace["traceEvents"]
                  if ev.get("ph") == "X" and ev.get("cat") == "svr"]
        assert len(slices) == 1
        assert slices[0]["name"] == "PRM (hslr)"
        assert slices[0]["ts"] == 100.0
        assert slices[0]["dur"] == 30.0
        asyncs = [ev for ev in trace["traceEvents"]
                  if ev.get("ph") in ("b", "e")]
        assert len(asyncs) == 2
        assert asyncs[0]["id"] == asyncs[1]["id"]

    def test_open_episode_flushed_at_window_end(self):
        bus = ProbeBus()
        builder = ChromeTraceBuilder()
        builder.attach(bus)
        bus.probe("svr.prm_enter").emit(pc=4, time=50.0, length=8,
                                        stride=4, addr=0)
        bus.probe("dram.access").emit(time=60.0, start=60.0,
                                      completion=150.0)
        builder.detach()
        trace = builder.to_dict()
        assert validate_trace(trace) == []
        open_slices = [ev for ev in trace["traceEvents"]
                       if ev.get("name") == "PRM (open)"]
        assert len(open_slices) == 1
        assert open_slices[0]["args"]["cause"] == "window-end"

    def test_orphan_exit_dropped(self):
        bus = ProbeBus()
        builder = ChromeTraceBuilder()
        builder.attach(bus)
        bus.probe("svr.prm_exit").emit(cause="hslr", time=10.0,
                                       duration=5.0, instructions=3, pc=0)
        builder.detach()
        assert builder.events == []

    def test_max_events_drops_not_grows(self):
        bus = ProbeBus()
        builder = ChromeTraceBuilder(max_events=4)
        builder.attach(bus)
        for i in range(8):
            bus.probe("dram.access").emit(time=float(i), start=float(i),
                                          completion=float(i) + 90.0)
        builder.detach()
        assert len(builder.events) == 4
        assert builder.dropped == 12
        assert builder.to_dict()["otherData"]["dropped_events"] == 12

    def test_write_creates_valid_json(self, tmp_path):
        bus = ProbeBus()
        builder = ChromeTraceBuilder()
        builder.attach(bus)
        self._emit_episode(bus)
        builder.detach()
        path = builder.write(tmp_path / "out" / "trace.json")
        trace = json.loads(path.read_text())
        assert validate_trace(trace) == []
        names = {ev["args"]["name"] for ev in trace["traceEvents"]
                 if ev["ph"] == "M" and ev["name"] == "thread_name"}
        assert {"core", "svr", "memory", "dram", "tlb"} <= names

    def test_validate_trace_flags_malformed(self):
        assert validate_trace({}) == ["traceEvents is not a list"]
        bad = {"traceEvents": [
            {"ph": "Z", "pid": 1},                       # bad phase
            {"ph": "X", "pid": 1, "tid": 1, "ts": 0.0},  # X without dur
            {"ph": "b", "pid": 1, "tid": 1, "ts": 0.0},  # async without id
            {"ph": "i", "tid": 1, "ts": 0.0},            # missing pid
        ]}
        problems = validate_trace(bad)
        assert len(problems) == 4


class TestMultiprocessTrace:
    def _event(self, ts, pid=1, tid=1, name="work"):
        return {"name": name, "cat": "span", "ph": "X", "ts": ts,
                "dur": 1.0, "pid": pid, "tid": tid}

    def test_one_process_track_per_pid(self):
        from repro.obs import build_multiprocess_trace

        trace = build_multiprocess_trace([
            {"pid": 100, "label": "worker A",
             "events": [self._event(50.0, pid=100)]},
            {"pid": 200, "label": "worker B",
             "events": [self._event(80.0, pid=200)]},
        ])
        assert validate_trace(trace) == []
        names = {ev["pid"]: ev["args"]["name"]
                 for ev in trace["traceEvents"]
                 if ev.get("ph") == "M"
                 and ev.get("name") == "process_name"}
        assert names == {100: "worker A", 200: "worker B"}
        assert trace["otherData"]["processes"] == 2
        # Timestamps origin-shifted so the earliest event starts at 0.
        slices = [ev for ev in trace["traceEvents"] if ev["ph"] == "X"]
        assert min(ev["ts"] for ev in slices) == 0.0

    def test_same_pid_entries_fold_into_one_track(self):
        from repro.obs import build_multiprocess_trace

        trace = build_multiprocess_trace([
            {"pid": 7, "label": "cell 1", "events": [self._event(1.0,
                                                                 pid=7)]},
            {"pid": 7, "label": "cell 2", "events": [self._event(2.0,
                                                                 pid=7)]},
        ])
        assert trace["otherData"]["processes"] == 1
        process_meta = [ev for ev in trace["traceEvents"]
                        if ev.get("ph") == "M"
                        and ev.get("name") == "process_name"]
        assert len(process_meta) == 1

    def test_validate_flags_unnamed_pid_when_metadata_present(self):
        trace = {"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1,
             "args": {"name": "worker"}},
            self._event(0.0, pid=1),
            self._event(1.0, pid=2),     # events but no process_name
        ]}
        problems = validate_trace(trace)
        assert any("pid 2" in p and "process_name" in p
                   for p in problems)

    def test_validate_flags_unnamed_track_in_multi_pid_trace(self):
        trace = {"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1,
             "args": {"name": "a"}},
            {"name": "process_name", "ph": "M", "pid": 2,
             "args": {"name": "b"}},
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
             "args": {"name": "t"}},
            self._event(0.0, pid=1, tid=1),
            self._event(1.0, pid=2, tid=9),   # unnamed (2, 9) track
        ]}
        problems = validate_trace(trace)
        assert any("tid=9" in p and "thread_name" in p
                   for p in problems)

    def test_single_pid_trace_needs_no_thread_names(self):
        trace = {"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1,
             "args": {"name": "only"}},
            self._event(0.0, pid=1, tid=3),
        ]}
        assert validate_trace(trace) == []

    def test_metadata_free_trace_skips_naming_checks(self):
        trace = {"traceEvents": [self._event(0.0, pid=1),
                                 self._event(1.0, pid=2)]}
        assert validate_trace(trace) == []

    def test_write_trace_round_trips(self, tmp_path):
        from repro.obs import build_multiprocess_trace, write_trace

        trace = build_multiprocess_trace(
            [{"pid": 5, "label": "w", "events": [self._event(3.0,
                                                             pid=5)]}])
        path = write_trace(trace, tmp_path / "deep" / "trace.json")
        assert json.loads(path.read_text()) == trace


class TestRunObservation:
    def test_counters_match_sim_result(self):
        obs = RunObservation()
        result = run("Camel", technique("svr16"), scale="tiny", obs=obs)
        snap = obs.metrics_snapshot()
        assert snap["core.instructions"] == result.core.instructions
        assert snap["dram.accesses"] == result.dram_lines
        assert snap["svr.prm.rounds"] == result.svr.prm_rounds
        assert snap["svr.svi.lanes"] == result.svr.svi_lanes
        assert (snap["mem.loads.dram"] + snap["mem.loads.l1"]
                + snap.get("mem.loads.l2", 0)) == snap["mem.loads"]

    def test_warmup_stays_unobserved(self):
        obs = RunObservation()
        run("Camel", technique("inorder"), scale="tiny", warmup=1000,
            measure=500, obs=obs)
        assert obs.metrics_snapshot()["core.instructions"] == 500

    def test_trace_and_record(self, tmp_path):
        trace_path = tmp_path / "t.json"
        jsonl_path = tmp_path / "log.jsonl"
        obs = RunObservation(chrome_trace=str(trace_path),
                             jsonl=str(jsonl_path))
        run("Camel", technique("svr16"), scale="tiny", obs=obs)
        trace = json.loads(trace_path.read_text())
        assert validate_trace(trace) == []
        assert any(ev.get("ph") == "X" and ev.get("cat") == "svr"
                   for ev in trace["traceEvents"])
        records = RunLog(jsonl_path).read()
        assert len(records) == 1
        assert records[0] == json.loads(json.dumps(obs.record, default=str))
        assert records[0]["result"]["workload"] == "Camel"
        assert records[0]["config"]["svr"]["vector_length"] == 16
        assert set(records[0]["profile"]) >= {"build", "warmup", "measure"}

    def test_observed_run_matches_unobserved(self):
        plain = run("Camel", technique("svr16"), scale="tiny")
        observed = run("Camel", technique("svr16"), scale="tiny",
                       obs=RunObservation())
        assert observed.core.cycles == plain.core.cycles
        assert observed.dram_lines == plain.dram_lines
        assert observed.svr.svi_lanes == plain.svr.svi_lanes


class TestCliObs:
    def test_run_json(self, capsys):
        from repro.__main__ import main

        assert main(["run", "Camel", "svr16", "--scale", "tiny",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "Camel"
        assert payload["svr"]["prm_rounds"] > 0

    def test_run_chrome_trace_and_jsonl(self, tmp_path, capsys):
        from repro.__main__ import main

        trace_path = tmp_path / "t.json"
        jsonl_path = tmp_path / "r.jsonl"
        assert main(["run", "Camel", "svr16", "--scale", "tiny",
                     "--chrome-trace", str(trace_path),
                     "--jsonl", str(jsonl_path)]) == 0
        capsys.readouterr()
        trace = json.loads(trace_path.read_text())
        assert validate_trace(trace) == []
        assert any(ev.get("cat") == "svr" and ev.get("ph") == "X"
                   for ev in trace["traceEvents"])
        assert len(RunLog(jsonl_path).read()) == 1

    def test_stats_command(self, capsys):
        from repro.__main__ import main

        assert main(["stats", "Camel", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "core.instructions" in out
        assert "svr.prm.vector_length" in out
        assert "wall-clock self-profile" in out

    def test_stats_json(self, capsys):
        from repro.__main__ import main

        assert main(["stats", "Camel", "inorder", "--scale", "tiny",
                     "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kind"] == "run"
        assert record["metrics"]["core.instructions"] > 0

    def test_figure_jsonl(self, tmp_path, capsys):
        from repro.__main__ import main

        jsonl_path = tmp_path / "fig.jsonl"
        assert main(["figure", "table2", "--jsonl", str(jsonl_path)]) == 0
        capsys.readouterr()
        records = RunLog(jsonl_path).read()
        assert len(records) == 1
        assert records[0]["kind"] == "figure"
        assert records[0]["name"] == "table2"
