"""Tests for the reference-validator library module."""

import pytest

from repro.cores.functional import FunctionalCore
from repro.workloads.registry import build_workload
from repro.workloads.validation import (
    ValidationError,
    validate,
    validate_pr,
)


def complete(name, scale="tiny"):
    workload = build_workload(name, scale)
    core = FunctionalCore(workload.program, workload.memory)
    core.run(30_000_000)
    assert core.halted
    return workload


class TestDispatch:
    @pytest.mark.parametrize("name", ["PR_UR", "BFS_UR", "CC_UR", "SSSP_UR",
                                      "BC_UR", "NAS-IS", "Kangr", "Randacc"])
    def test_validates_completed_run(self, name):
        workload = complete(name)
        validate(workload)    # must not raise

    def test_unknown_workload_rejected(self):
        workload = build_workload("Camel", "tiny")
        with pytest.raises(ValueError, match="no validator"):
            validate(workload)

    def test_gap_name_dispatch_strips_input(self):
        workload = complete("PR_KR")
        validate(workload)    # dispatched via the "PR" kernel prefix


class TestDetection:
    def test_detects_corrupted_pr_scores(self):
        workload = complete("PR_UR")
        shift = workload.meta["vertex_shift"]
        base = workload.meta["scores"]
        value = workload.memory.read_word(base)
        workload.memory.write_word(base, value + 1)
        with pytest.raises(ValidationError, match="PR"):
            validate_pr(workload)

    def test_detects_unfinished_run(self):
        """A half-finished kernel fails validation (scores still zero)."""
        workload = build_workload("PR_UR", "tiny")
        core = FunctionalCore(workload.program, workload.memory)
        core.run(500)     # nowhere near completion
        with pytest.raises(ValidationError):
            validate(workload)

    def test_detects_corrupted_histogram(self):
        workload = complete("NAS-IS")
        base = workload.meta["hist"]
        workload.memory.write_word(base, 999_999)
        with pytest.raises(ValidationError):
            validate(workload)

    def test_detects_corrupted_randacc_table(self):
        workload = complete("Randacc")
        base = workload.meta["table"]
        value = workload.memory.read_word(base + 8)
        workload.memory.write_word(base + 8, value ^ 0xFF)
        with pytest.raises(ValidationError):
            validate(workload)


class TestSvrPreservesValidity:
    """The deepest end-to-end property: a full SVR-simulated run produces
    exactly the memory image the reference computation demands."""

    @pytest.mark.parametrize("name", ["PR_UR", "NAS-IS", "Kangr"])
    def test_timing_run_with_svr_validates(self, name):
        from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy
        from repro.cores.inorder import InOrderCore
        from repro.svr.config import SVRConfig
        from repro.svr.unit import ScalarVectorUnit

        workload = build_workload(name, "tiny")
        hierarchy = MemoryHierarchy(workload.memory, MemoryConfig())
        core = InOrderCore(workload.program, workload.memory, hierarchy,
                           svr=ScalarVectorUnit(SVRConfig()))
        core.run(5_000_000)
        assert core.halted
        validate(workload)
