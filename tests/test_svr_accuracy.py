"""Unit tests for the SVR accuracy monitor (Section IV-A7)."""

from repro.svr.accuracy import AccuracyMonitor


def feed(monitor, useful, useless):
    for _ in range(useful):
        monitor.on_useful("svr")
    for _ in range(useless):
        monitor.on_useless("svr")


class TestGate:
    def test_allows_by_default(self):
        assert AccuracyMonitor().allow_trigger()

    def test_no_ban_during_warmup(self):
        monitor = AccuracyMonitor(warmup_events=100)
        feed(monitor, 10, 80)      # 90 events: still warming up
        assert monitor.allow_trigger()

    def test_bans_below_threshold_after_warmup(self):
        monitor = AccuracyMonitor(threshold=0.5, warmup_events=100)
        feed(monitor, 30, 80)
        assert not monitor.allow_trigger()
        assert monitor.bans == 1

    def test_accurate_prefetching_never_banned(self):
        monitor = AccuracyMonitor(threshold=0.5, warmup_events=100)
        feed(monitor, 150, 20)
        assert monitor.allow_trigger()

    def test_exactly_at_threshold_allowed(self):
        monitor = AccuracyMonitor(threshold=0.5, warmup_events=10)
        feed(monitor, 50, 50)
        assert monitor.allow_trigger()

    def test_ignores_other_origins(self):
        monitor = AccuracyMonitor(warmup_events=10)
        for _ in range(100):
            monitor.on_useless("imp")
        assert monitor.allow_trigger()
        assert monitor.useless == 0

    def test_disabled_monitor_never_bans(self):
        monitor = AccuracyMonitor(warmup_events=10, enabled=False)
        feed(monitor, 0, 100)
        assert monitor.allow_trigger()


class TestPeriodicReset:
    def test_ban_lifts_after_reset_interval(self):
        monitor = AccuracyMonitor(threshold=0.5, warmup_events=10,
                                  reset_interval=1000)
        feed(monitor, 1, 20)
        assert not monitor.allow_trigger()
        monitor.tick(1000)
        assert monitor.allow_trigger()
        assert monitor.useful == 0 and monitor.useless == 0

    def test_tick_accumulates(self):
        monitor = AccuracyMonitor(threshold=0.5, warmup_events=10,
                                  reset_interval=100)
        feed(monitor, 0, 20)
        for _ in range(99):
            monitor.tick()
        assert not monitor.allow_trigger()
        monitor.tick()
        assert monitor.allow_trigger()

    def test_accuracy_property(self):
        monitor = AccuracyMonitor()
        assert monitor.accuracy == 1.0
        feed(monitor, 3, 1)
        assert monitor.accuracy == 0.75
