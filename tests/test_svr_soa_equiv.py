"""Scalar-vs-SoA lane-engine equivalence, and the lane-state bug pins.

The contract: the SoA fast path changes *how fast the simulator runs*,
never *what it simulates*.  Every cell of the pinned equivalence matrix
must export byte-identical ``SimResult.to_dict()`` fingerprints under all
three ``lane_engine`` settings, and the two engines must agree on every
piece of architectural lane state (SRF vectors, HSLR mask, end cycle)
after every single instruction.

Also here: regression pins for the three lane-state bugs this change
fixed — the unmasked invalid store-source lane, the SRF-exhaustion taint
that kept a stale mapping, and ``release_all`` leaving valid bits set.
"""

import json

import numpy as np
import pytest

from repro.harness.runner import run, technique
from repro.isa.instructions import Instruction, Opcode
from repro.svr.config import RecyclingPolicy, SVRConfig
from repro.svr.srf import SpeculativeRegisterFile
from repro.svr.stride_detector import StrideEntry
from repro.svr.taint_tracker import TaintTracker
from repro.workloads.expectations import SOA_EQUIVALENCE_CELLS

from conftest import build_gather_workload, make_inorder


def _fingerprint(workload: str, tech_name: str, engine: str) -> str:
    result = run(workload, technique(tech_name, lane_engine=engine),
                 scale="tiny")
    return json.dumps(result.to_dict(), sort_keys=True)


class TestFingerprintEquivalence:
    """Byte-identical end-to-end exports across the fallback matrix."""

    @pytest.mark.parametrize("workload,tech", SOA_EQUIVALENCE_CELLS,
                             ids=[f"{w}-{t}" for w, t in
                                  SOA_EQUIVALENCE_CELLS])
    def test_cell_identical_across_engines(self, workload, tech):
        scalar = _fingerprint(workload, tech, "scalar")
        auto = _fingerprint(workload, tech, "auto")
        soa = _fingerprint(workload, tech, "soa")
        assert scalar == auto
        assert scalar == soa


class TestLockstepStateEquivalence:
    """Step two cores together and compare lane state after every step."""

    def test_srf_mask_and_timing_agree_each_step(self):
        prog_a, mem_a = build_gather_workload(count=64)
        prog_b, mem_b = build_gather_workload(count=64)
        core_a, _, unit_a = make_inorder(
            prog_a, mem_a, svr=SVRConfig(lane_engine="scalar"))
        core_b, _, unit_b = make_inorder(
            prog_b, mem_b, svr=SVRConfig(lane_engine="soa"))
        for _ in range(1500):
            alive_a = core_a.step()
            alive_b = core_b.step()
            assert alive_a == alive_b
            assert core_a.pc == core_b.pc
            assert unit_a.in_prm == unit_b.in_prm
            np.testing.assert_array_equal(unit_a.mask, unit_b.mask)
            np.testing.assert_array_equal(unit_a.srf.values,
                                          unit_b.srf.values)
            np.testing.assert_array_equal(unit_a.srf.valid, unit_b.srf.valid)
            np.testing.assert_array_equal(unit_a.srf.ready, unit_b.srf.ready)
            assert core_a.stats.end_cycle == core_b.stats.end_cycle
            if not alive_a:
                break
        # The comparison is only meaningful if the SoA side actually
        # batched rounds while the scalar side looped.
        assert unit_b.engine_stats.batched_rounds > 0
        assert unit_b.engine_stats.batched_ops > 0
        assert unit_a.engine_stats.batched_rounds == 0
        assert unit_a.stats.prm_rounds == unit_b.stats.prm_rounds


class TestDispatchPolicy:
    """The plan-keyed round dispatch (auto / soa / scalar, oracle pin)."""

    def _run_gather(self, engine, oracle=None):
        program, memory = build_gather_workload(count=128)
        core, _, unit = make_inorder(program, memory,
                                     svr=SVRConfig(lane_engine=engine))
        if oracle is not None:
            unit.oracle = oracle
        core.run(2000)
        return unit

    def test_scalar_engine_never_batches(self):
        unit = self._run_gather("scalar")
        assert unit.stats.prm_rounds > 0
        assert unit.engine_stats.batched_rounds == 0
        assert unit.engine_stats.scalar_rounds == unit.stats.prm_rounds

    def test_soa_engine_batches_every_round(self):
        unit = self._run_gather("soa")
        assert unit.stats.prm_rounds > 0
        assert unit.engine_stats.scalar_rounds == 0
        assert unit.engine_stats.batched_rounds == unit.stats.prm_rounds

    def test_oracle_forces_scalar_rounds(self):
        """Oracle instrumentation needs per-lane observe ordering."""
        from repro.analysis.oracle import OracleRecorder

        unit = self._run_gather("soa", oracle=OracleRecorder())
        assert unit.stats.prm_rounds > 0
        assert unit.engine_stats.batched_rounds == 0

    def test_plan_miss_keeps_auto_on_reference_path(self):
        """A seed with no loop plan must not batch under 'auto'."""
        program, memory = build_gather_workload(count=32)
        _, _, unit = make_inorder(program, memory,
                                  svr=SVRConfig(lane_engine="auto"))
        unit._plan = False   # simulate plan construction failure
        entry = StrideEntry(pc=999, prev_addr=0, stride=8)
        assert unit._seed_dispatch(entry) is False
        assert unit.engine_stats.plan_misses == 1

    def test_plan_miss_still_batches_under_soa(self):
        """'soa' forces batching (the kernels are exact) even unplanned."""
        program, memory = build_gather_workload(count=32)
        _, _, unit = make_inorder(program, memory,
                                  svr=SVRConfig(lane_engine="soa"))
        unit._plan = False
        entry = StrideEntry(pc=999, prev_addr=0, stride=8)
        assert unit._seed_dispatch(entry) is True

    def test_dispatch_verdict_cached_on_entry(self):
        program, memory = build_gather_workload(count=32)
        _, _, unit = make_inorder(program, memory,
                                  svr=SVRConfig(lane_engine="auto"))
        unit._plan = False
        entry = StrideEntry(pc=999, prev_addr=0, stride=8)
        unit._seed_dispatch(entry)
        unit._seed_dispatch(entry)
        assert entry.plan_resolved
        assert unit.engine_stats.plan_misses == 1   # resolved once

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="lane_engine"):
            SVRConfig(lane_engine="simd")


class TestAllocateManyExactness:
    """Closed-form batched slot allocation == sequential ``allocate``."""

    @pytest.mark.parametrize("width", [1, 2, 3, 5])
    def test_matches_sequential_allocate(self, width):
        import copy

        from repro.cores.base import IssueSlots

        rng = np.random.default_rng(width)
        for _ in range(300):
            slots = IssueSlots(width)
            for _ in range(int(rng.integers(0, 8))):
                slots.allocate(float(rng.uniform(0, 20)))
            earliest = float(rng.uniform(-2.0, 25.0))
            count = int(rng.integers(0, 40))
            ref = copy.copy(slots)
            expect = np.array([ref.allocate(earliest) for _ in range(count)])
            got = slots.allocate_many(earliest, count)
            np.testing.assert_array_equal(got, expect)
            assert slots.current_cycle == ref.current_cycle
            assert slots.peek(earliest) == ref.peek(earliest)


class TestStoreLaneMaskingRegression:
    """Bug pin: an invalid store-source lane must be masked and counted.

    Before the fix, ``_generate_dependent_store`` skipped invalid source
    lanes with a bare ``continue`` — the lane kept issuing SVIs for the
    rest of the round even though its chain values were garbage.
    """

    def _prm_unit(self, engine="scalar"):
        program, memory = build_gather_workload(count=32)
        core, _, unit = make_inorder(program, memory,
                                     svr=SVRConfig(lane_engine=engine))
        unit.in_prm = True
        unit.mask = np.ones(unit.config.vector_length, dtype=bool)
        return unit

    def test_invalid_source_lane_is_masked_and_counted(self):
        unit = self._prm_unit()
        srf_id = unit.srf.allocate(5, unit.taint)
        unit.taint.map(5, srf_id, 0)
        for lane in range(8):      # lanes 8..15 stay invalid
            unit.srf.write_lane(srf_id, lane, 0x2_0000 + 8 * lane, 0.0)
        store = Instruction(Opcode.ST, rs1=5, rs2=6)
        unit._generate_dependent_store(0, store, issue_time=0.0)
        assert unit.mask[:8].all()
        assert not unit.mask[8:].any()
        assert unit.stats.masked_lanes == 8

    def test_masked_store_lane_stays_dead_for_later_svis(self):
        unit = self._prm_unit()
        srf_id = unit.srf.allocate(5, unit.taint)
        unit.taint.map(5, srf_id, 0)
        unit.srf.write_lane(srf_id, 0, 0x2_0000, 0.0)   # only lane 0 valid
        store = Instruction(Opcode.ST, rs1=5, rs2=6)
        unit._generate_dependent_store(0, store, issue_time=0.0)
        assert unit._active_lanes() == [0]


class TestSrfExhaustionTaintRegression:
    """Bug pin: allocation failure must leave the register *unmapped*.

    Before the fix the stride-SVI path set ``tainted = True`` but left a
    stale ``mapped`` / ``srf_id`` from a previous mapping, so consumers
    could read a recycled SRF vector belonging to another register.
    """

    def _exhausted_unit(self):
        program, memory = build_gather_workload(count=32)
        core, _, unit = make_inorder(
            program, memory,
            svr=SVRConfig(srf_entries=1, recycling=RecyclingPolicy.DVR,
                          lane_engine="scalar"))
        unit.in_prm = True
        unit.mask = np.ones(unit.config.vector_length, dtype=bool)
        srf_id = unit.srf.allocate(1, unit.taint)
        unit.taint.map(1, srf_id, 0)   # the single entry is now live
        return unit

    def test_stride_path_taints_without_mapping(self):
        unit = self._exhausted_unit()
        # Leave register 2 with a stale mapping record, as a recycled
        # register would have.
        unit.taint.map(2, 0, 0)
        unit.taint.unmap(2)
        entry = StrideEntry(pc=4, prev_addr=0x2_0000, stride=8, confidence=3)
        load = Instruction(Opcode.LD, rd=2, rs1=3)
        unit._generate_stride_svis(entry, load, 0x2_0000, 0.0,
                                   shared_mask=False, length=4)
        tentry = unit.taint.entry(2)
        assert tentry.tainted
        assert not tentry.mapped
        assert tentry.srf_id == -1
        assert not unit.taint.is_vectorizable(2)

    def test_dependent_path_taints_without_mapping(self):
        unit = self._exhausted_unit()
        unit._write_dest_lanes(2, [(0, 7, 1.0)])
        tentry = unit.taint.entry(2)
        assert tentry.tainted
        assert not tentry.mapped
        assert tentry.srf_id == -1

    def test_taint_unmapped_helper_contract(self):
        taint = TaintTracker()
        taint.map(3, srf_id=2, offset=0)
        taint.taint_unmapped(3)
        entry = taint.entry(3)
        assert entry.tainted
        assert not entry.mapped
        assert entry.srf_id == -1
        assert taint.is_tainted(3)
        assert not taint.is_vectorizable(3)


class TestReleaseAllValidBitsRegression:
    """Bug pin: ``release_all`` must invalidate every lane."""

    def test_release_all_clears_valid_bits(self):
        srf = SpeculativeRegisterFile(4, 16, RecyclingPolicy.LRU)
        taint = TaintTracker()
        srf_id = srf.allocate(3, taint)
        srf.write_lane(srf_id, 0, 7, 1.0)
        srf.write_lane(srf_id, 5, 9, 2.0)
        srf.release_all()
        assert not srf.valid.any()

    def test_release_single_clears_valid_bits(self):
        srf = SpeculativeRegisterFile(4, 16, RecyclingPolicy.LRU)
        taint = TaintTracker()
        srf_id = srf.allocate(3, taint)
        srf.write_lane(srf_id, 2, 7, 1.0)
        srf.release(srf_id)
        assert not srf.valid[srf_id].any()

    def test_reused_entry_never_exposes_stale_lane(self):
        srf = SpeculativeRegisterFile(1, 8, RecyclingPolicy.LRU)
        taint = TaintTracker()
        first = srf.allocate(3, taint)
        taint.map(3, first, 0)
        srf.write_lane(first, 4, 0xDEAD, 1.0)
        srf.release_all()
        taint.clear()
        second = srf.allocate(9, taint)
        _, _, valid = srf.read_lane(second, 4)
        assert not valid
