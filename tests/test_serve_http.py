"""End-to-end drills for ``repro serve``: a real ReproServer on an
ephemeral port, exercised over HTTP through ``repro.serve.client``, with
deterministic fault injection driving the crash / hang / flood /
corruption paths.  The one invariant every test leans on: the server
never exits, and every admitted job reaches a terminal verdict."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.exec.faults import FaultPlan, parse_fault
from repro.serve import ReproServer, ServeClient, ServeClientError, ServeConfig


def start_server(tmp_path, **overrides) -> ReproServer:
    settings = dict(host="127.0.0.1", port=0, workers=2,
                    store_dir=str(tmp_path / "store"),
                    ledger=str(tmp_path / "ledger.jsonl"),
                    drain_timeout_s=5.0)
    settings.update(overrides)
    server = ReproServer(ServeConfig(**settings))
    server.start()
    return server


def stop_server(server: ReproServer) -> None:
    if not server.wait(0):
        server.request_drain("test teardown")
        assert server.wait(30), "server failed to drain in teardown"


def client_for(server: ReproServer, client_id: str = "pytest") -> ServeClient:
    return ServeClient(f"http://127.0.0.1:{server.port}",
                       client_id=client_id, timeout_s=10.0)


def raw_post(server: ReproServer, body: bytes) -> int:
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}/jobs", data=body,
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status
    except urllib.error.HTTPError as err:
        err.read()
        return err.code


# ---------------------------------------------------------------------------
# Healthy service: submit, cache, validate, corrupt, drain.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def serving(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve-clean")
    server = start_server(tmp, retries=0, timeout_s=60.0, queue_limit=16)
    yield server
    stop_server(server)


class TestService:
    def test_submit_runs_to_ok(self, serving):
        client = client_for(serving)
        job = client.submit("PR_KR", "svr16", scale="tiny")
        assert job["state"] in ("queued", "running")
        final = client.wait(job["job_id"], timeout_s=60.0)
        assert final["job"]["state"] == "ok"
        assert final["job"]["attempts"] == 1
        assert final["result"]["ipc"] > 0

    def test_resubmit_is_cache_hit_served_byte_identically(self, serving):
        client = client_for(serving)
        job = client.submit("PR_KR", "svr16", scale="tiny")
        assert job["state"] == "ok" and job["cached"]
        first = client.result_bytes(job["key"])
        second = client.result_bytes(job["key"])
        assert first == second and len(first) > 0
        entry = json.loads(first)
        assert entry["key"] == job["key"]
        assert entry["record"]["status"] == "ok"

    def test_introspection_endpoints(self, serving):
        client = client_for(serving)
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"]
        jobs = client.jobs()
        assert any(j["cached"] for j in jobs)
        metrics = client.metrics()
        assert metrics["serve.cache_hits"] >= 1
        assert metrics["serve.requests"] >= len(jobs)
        assert metrics["serve.jobs_ok"] >= 1
        assert isinstance(client.spans(), list)

    @pytest.mark.parametrize("payload", [
        {"workload": "Hashjoin", "technique": "svr16", "scale": "tiny"},
        {"workload": "PR_KR", "technique": "warp9", "scale": "tiny"},
        {"workload": "PR_KR", "technique": "svr16", "scale": "galactic"},
        {"workload": "PR_KR", "technique": "svr16", "scale": "tiny",
         "warmup": -5},
        {"workload": "PR_KR", "technique": "svr16", "scale": "tiny",
         "sudo": True},
        {"workload": "", "technique": "svr16"},
        ["not", "a", "dict"],
    ])
    def test_invalid_submissions_are_400_not_worker_food(self, serving,
                                                        payload):
        client = client_for(serving)
        with pytest.raises(ServeClientError) as err:
            client._json("POST", "/jobs", payload)
        assert err.value.status == 400

    def test_malformed_body_and_routes(self, serving):
        assert raw_post(serving, b"{ not json") == 400
        client = client_for(serving)
        with pytest.raises(ServeClientError) as err:
            client.job("job-9999")
        assert err.value.status == 404
        with pytest.raises(ServeClientError) as err:
            client.result_bytes("NOT-A-KEY")
        assert err.value.status == 400
        # After all that abuse the service is still healthy.
        assert client.health()["status"] == "ok"

    def test_store_corruption_is_detected_and_rebuilt_from_ledger(
            self, serving):
        client = client_for(serving)
        job = client.submit("PR_KR", "svr16", scale="tiny")
        assert job["cached"]
        key = job["key"]
        original = json.loads(client.result_bytes(key))
        corrupt_before = serving.store.corrupt_detected
        serving.store.entry_path(key).write_text("{ torn write")
        rebuilt = json.loads(client.result_bytes(key))
        assert serving.store.corrupt_detected == corrupt_before + 1
        assert rebuilt["record"]["result"] == original["record"]["result"]
        assert rebuilt["record"]["status"] == "ok"
        metrics = client.metrics()
        assert metrics["serve.store_corrupt"] >= 1
        assert metrics["serve.store_rebuild"] >= 1
        # The quarantined bytes survive for forensics.
        assert list(serving.store.root.glob(f"{key}.corrupt.*"))

    def test_graceful_drain_refuses_new_work_and_exits(self, serving):
        # Runs last in this class: it shuts the shared server down.
        client = client_for(serving)
        client.drain()
        with pytest.raises(ServeClientError) as err:
            client.submit("Camel", "svr16", scale="tiny")
        assert err.value.status == 503
        assert serving.wait(15), "drained server did not shut down"
        states = {j.state for j in serving.queue.jobs()}
        assert states <= {"ok", "failed", "quarantined"}


# ---------------------------------------------------------------------------
# Fault drills: crash, hang, breaker quarantine.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def chaos(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve-chaos")
    faults = FaultPlan(specs=(parse_fault("Camel/*:crash:2"),
                              parse_fault("HJ2/*:crash:99"),
                              parse_fault("Kangr/*:hang:99")))
    server = start_server(tmp, timeout_s=1.5, retries=2, backoff_s=0.05,
                          max_backoff_s=0.2, breaker_threshold=2,
                          breaker_cooldown_s=300.0, drain_timeout_s=2.0,
                          faults=faults)
    yield server
    stop_server(server)


class TestFaultDrills:
    def test_worker_crash_is_retried_to_success(self, chaos):
        client = client_for(chaos)
        job = client.submit("Camel", "svr16", scale="tiny")
        final = client.wait(job["job_id"], timeout_s=60.0)
        assert final["job"]["state"] == "ok"
        assert final["job"]["attempts"] == 3      # crash, crash, ok
        assert chaos.pool.restarts >= 2
        metrics = client.metrics()
        assert metrics["serve.worker_restart"] >= 2
        assert metrics["exec.retries"] >= 2

    def test_hung_worker_is_killed_and_job_fails_as_hang(self, chaos):
        client = client_for(chaos)
        job = client.submit("Kangr", "svr16", scale="tiny")
        final = client.wait(job["job_id"], timeout_s=60.0)
        assert final["job"]["state"] == "failed"
        assert final["job"]["failure"]["kind"] == "hang"
        assert final["job"]["attempts"] == 3

    def test_breaker_opens_and_short_circuits_to_quarantined(self, chaos):
        client = client_for(chaos)
        for _ in range(2):                        # threshold is 2
            job = client.submit("HJ2", "svr16", scale="tiny")
            final = client.wait(job["job_id"], timeout_s=60.0)
            assert final["job"]["state"] == "failed"
            assert final["job"]["failure"]["kind"] == "crash"
        quarantined = client.submit("HJ2", "svr16", scale="tiny")
        assert quarantined["state"] == "quarantined"   # immediate verdict
        assert quarantined["failure"]["kind"] == "quarantined"
        assert "crash" in quarantined["failure"]["message"]
        health = client.health()
        assert any(entry["state"] == "open"
                   for entry in health["breaker"].values())
        metrics = client.metrics()
        assert metrics["serve.breaker_open"] >= 1
        assert metrics["serve.breaker_short_circuit"] >= 1
        assert metrics["serve.jobs_quarantined"] >= 1

    def test_server_survives_the_chaos(self, chaos):
        client = client_for(chaos)
        job = client.submit("PR_KR", "inorder", scale="tiny")
        final = client.wait(job["job_id"], timeout_s=60.0)
        assert final["job"]["state"] == "ok"
        assert client.health()["status"] == "ok"


# ---------------------------------------------------------------------------
# Backpressure: rate limiting, bounded queue, coalescing.
# ---------------------------------------------------------------------------

class TestBackpressure:
    def test_flood_control_and_coalescing(self, tmp_path):
        server = start_server(
            tmp_path, workers=1, queue_limit=1, rate=0.001, burst=1.0,
            timeout_s=1.0, retries=0, drain_timeout_s=0.5,
            faults=FaultPlan(specs=(parse_fault("*/*:hang:99"),)))
        try:
            alice = client_for(server, "alice")
            bob = client_for(server, "bob")
            carol = client_for(server, "carol")
            # Alice's token admits one cell, which hangs in the worker.
            job = alice.submit("G500", "svr16", scale="tiny")
            assert job["state"] in ("queued", "running")
            # Alice is now out of tokens: rate-limited with a hint.
            with pytest.raises(ServeClientError) as err:
                alice.submit("NAS-CG", "svr16", scale="tiny")
            assert err.value.status == 429
            assert err.value.retry_after_s > 0
            assert "rate limit" in str(err.value)
            # Bob has tokens, but the queue is at capacity.
            with pytest.raises(ServeClientError) as err:
                bob.submit("NAS-CG", "svr16", scale="tiny")
            assert err.value.status == 429
            assert err.value.retry_after_s > 0
            assert "queue" in str(err.value)
            # Carol resubmits the in-flight cell: coalesced onto it,
            # exempt from the capacity check.
            rider = carol.submit("G500", "svr16", scale="tiny")
            assert rider["coalesced"]
            assert rider["key"] == job["key"]
            metrics = alice.metrics()
            assert metrics["serve.rejected_ratelimit"] >= 1
            assert metrics["serve.rejected_queue_full"] >= 1
            assert metrics["serve.coalesced"] >= 1
            # Drain force-settles the hanging cell: both riders reach a
            # terminal verdict, nothing is stranded.
            server.request_drain("backpressure test done")
            assert server.wait(30)
            for job_id in (job["job_id"], rider["job_id"]):
                tracked = server.queue.get(job_id)
                assert tracked.state == "failed"
                assert tracked.failure.kind == "hang"
        finally:
            stop_server(server)
