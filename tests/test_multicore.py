"""Tests for the multicore extension (paper Section VI-E)."""

import pytest

from repro.harness.multicore import MulticoreResult, run_multicore, scaling_study


class TestRunMulticore:
    def test_single_core_matches_shape_of_runner(self):
        result = run_multicore(["Camel"], "inorder", scale="tiny",
                               warmup=500, measure=2000)
        assert result.num_cores == 1
        assert result.per_core[0].instructions == 2000
        assert result.aggregate_ipc > 0

    def test_cores_share_the_dram_channel(self):
        solo = run_multicore(["Camel"], "inorder", scale="tiny",
                             warmup=500, measure=2000)
        duo = run_multicore(["Camel", "Camel"], "inorder", scale="tiny",
                            warmup=500, measure=2000)
        assert duo.num_cores == 2
        assert duo.dram_lines > solo.dram_lines
        assert duo.dram_utilisation > solo.dram_utilisation * 1.2

    def test_aggregate_ipc_sums_cores(self):
        duo = run_multicore(["Camel", "Camel"], "inorder", scale="tiny",
                            warmup=500, measure=2000)
        solo = run_multicore(["Camel"], "inorder", scale="tiny",
                             warmup=500, measure=2000)
        # Two latency-bound in-order cores barely contend: ~2x throughput.
        assert duo.aggregate_ipc > 1.5 * solo.aggregate_ipc

    def test_heterogeneous_workloads(self):
        result = run_multicore(["Camel", "PR_UR"], "svr16", scale="tiny",
                               warmup=500, measure=2000)
        assert result.workloads == ("Camel", "PR_UR")
        assert all(s.instructions == 2000 for s in result.per_core)

    def test_svr_multicore_beats_inorder_multicore(self):
        base = run_multicore(["Camel"] * 2, "inorder", scale="tiny",
                             warmup=500, measure=2000)
        svr = run_multicore(["Camel"] * 2, "svr16", scale="tiny",
                            warmup=500, measure=2000)
        assert svr.aggregate_ipc > 1.5 * base.aggregate_ipc

    def test_unknown_core_kind_rejected(self):
        from repro.harness.runner import TechniqueConfig

        with pytest.raises(ValueError):
            run_multicore(["Camel"], TechniqueConfig("bad", core="vliw"),
                          scale="tiny")

    def test_result_helpers(self):
        result = MulticoreResult("svr16", ("Camel",))
        assert result.aggregate_ipc == 0.0
        assert result.mean_cpi == 0.0


class TestScalingStudy:
    def test_structure_and_monotonicity(self):
        out = scaling_study("Camel", techniques=("inorder", "svr16"),
                            core_counts=(1, 2), scale="tiny", measure=2000)
        assert set(out) == {"inorder", "svr16"}
        for series in out.values():
            assert series[2] > series[1]     # more cores, more throughput
        # SVR's per-core advantage survives sharing the channel.
        assert out["svr16"][2] > 1.5 * out["inorder"][2]
