"""Unit tests for the SVR stride detector (Fig 6 fields)."""

from repro.svr.stride_detector import StrideDetector


def feed(detector, pc, addrs):
    return [detector.observe(pc, a) for a in addrs]


class TestDetection:
    def test_first_observation_not_striding(self):
        det = StrideDetector()
        obs = det.observe(1, 1000)
        assert not obs.is_striding and not obs.continued

    def test_confidence_builds_with_constant_stride(self):
        det = StrideDetector(confidence_threshold=2)
        observations = feed(det, 1, [0, 8, 16, 24])
        assert not observations[1].is_striding   # first stride sample
        assert observations[3].is_striding

    def test_negative_stride_detected(self):
        det = StrideDetector()
        observations = feed(det, 1, [800, 792, 784, 776])
        assert observations[3].is_striding
        assert observations[3].entry.stride == -8

    def test_zero_stride_never_confident(self):
        det = StrideDetector()
        observations = feed(det, 1, [100, 100, 100, 100, 100])
        assert not observations[-1].is_striding

    def test_discontinuity_lowers_confidence(self):
        det = StrideDetector()
        feed(det, 1, [0, 8, 16, 24, 32])
        obs = det.observe(1, 5000)
        entry = obs.entry
        before = entry.confidence
        det.observe(1, 9000)   # stride 4000, mismatch again
        assert entry.confidence <= before

    def test_independent_pcs(self):
        det = StrideDetector()
        feed(det, 1, [0, 8, 16, 24])
        obs = det.observe(2, 64)
        assert not obs.is_striding

    def test_capacity_eviction_lru(self):
        det = StrideDetector(entries=2)
        det.observe(1, 0)
        det.observe(2, 0)
        det.observe(1, 8)    # touch 1
        det.observe(3, 0)    # evicts 2
        assert det.get(2) is None
        assert det.get(1) is not None


class TestWaitingRange:
    def test_range_recorded_and_detected(self):
        det = StrideDetector()
        observations = feed(det, 1, [0, 8, 16])
        entry = observations[-1].entry
        det.record_prefetch_range(entry, 16, 16 + 16 * 8)
        obs = det.observe(1, 24)
        assert obs.in_waiting_range
        obs = det.observe(1, 16 + 17 * 8)
        assert not obs.in_waiting_range

    def test_negative_stride_range(self):
        det = StrideDetector()
        observations = feed(det, 1, [800, 792, 784])
        entry = observations[-1].entry
        det.record_prefetch_range(entry, 784, 784 - 16 * 8)
        assert det.observe(1, 776).in_waiting_range
        assert not det.observe(1, 784 - 17 * 8).in_waiting_range

    def test_no_range_before_first_round(self):
        det = StrideDetector()
        observations = feed(det, 1, [0, 8, 16, 24])
        assert not observations[-1].in_waiting_range


class TestEwma:
    def test_run_end_updates_ewma(self):
        det = StrideDetector()
        # 5 addresses: the first pair trains the stride, 3 continuations.
        feed(det, 1, [0, 8, 16, 24, 32])
        obs = det.observe(1, 100000)        # discontinuity
        assert obs.ended_run and obs.run_length == 3
        assert obs.entry.ewma_trained
        assert obs.entry.ewma == 3.0        # cold start seeds directly

    def test_ewma_moving_average(self):
        det = StrideDetector()
        feed(det, 1, [0, 8, 16, 24, 32])    # run 3 -> ewma 3
        # Hysteresis keeps stride 8 across the jump, so the second run
        # counts 11 continuations (100008 onward).
        feed(det, 1, [100000, 100008] + [100016 + 8 * i for i in range(10)])
        obs = det.observe(1, 999000)
        expected = 7 * 3.0 / 8 + 11 / 8
        assert abs(obs.entry.ewma - expected) < 1e-9

    def test_cap_forces_update(self):
        det = StrideDetector(ewma_cap=8)
        observations = feed(det, 1, [i * 8 for i in range(12)])
        capped = [o for o in observations if o.ended_run]
        assert capped and capped[0].run_length == 8
        assert observations[-1].entry.iteration < 8


class TestSeenAndLil:
    def test_clear_seen_except(self):
        det = StrideDetector()
        a = det.observe(1, 0).entry
        b = det.observe(2, 0).entry
        a.seen = True
        b.seen = True
        det.clear_seen_except(1)
        assert a.seen and not b.seen

    def test_lil_training_confidence(self):
        det = StrideDetector()
        entry = det.observe(1, 0).entry
        det.record_lil(entry, 5)      # mismatch with 0 -> replace
        assert entry.lil_offset == 5 and entry.lil_confidence == 0
        det.record_lil(entry, 5)
        det.record_lil(entry, 5)
        assert entry.lil_confidence == 2

    def test_lil_change_needs_confidence_drain(self):
        det = StrideDetector()
        entry = det.observe(1, 0).entry
        for _ in range(3):
            det.record_lil(entry, 5)
        det.record_lil(entry, 9)      # one mismatch: keep old offset
        assert entry.lil_offset == 5
        for _ in range(4):
            det.record_lil(entry, 9)
        assert entry.lil_offset == 9
