"""Unit tests for the DRAM latency/bandwidth model."""

import pytest

from repro.memory.dram import DramModel


class TestLatency:
    def test_unloaded_access_pays_latency(self):
        dram = DramModel(latency_ns=45.0, frequency_ghz=2.0)
        assert dram.access(0.0) == pytest.approx(90.0)

    def test_latency_scales_with_frequency(self):
        dram = DramModel(latency_ns=50.0, frequency_ghz=1.0)
        assert dram.access(0.0) == pytest.approx(50.0)

    def test_access_at_later_time_completes_later(self):
        dram = DramModel()
        assert dram.access(100.0) == pytest.approx(100.0 + dram.latency_cycles)


class TestBandwidth:
    def test_line_time_from_bandwidth(self):
        # 50 GiB/s at 2 GHz = 26.84 B/cycle -> 64 B line takes ~2.38 cycles.
        dram = DramModel(bandwidth_gbps=50.0, frequency_ghz=2.0)
        expected = 64 / (50 * (1 << 30) / 2e9)
        assert dram.cycles_per_line == pytest.approx(expected)

    def test_back_to_back_requests_queue(self):
        dram = DramModel()
        first = dram.access(0.0)
        second = dram.access(0.0)
        assert second == pytest.approx(first + dram.cycles_per_line)

    def test_halving_bandwidth_doubles_queueing(self):
        fast = DramModel(bandwidth_gbps=100.0)
        slow = DramModel(bandwidth_gbps=50.0)
        assert slow.cycles_per_line == pytest.approx(2 * fast.cycles_per_line)

    def test_spaced_requests_do_not_queue(self):
        dram = DramModel()
        first = dram.access(0.0)
        second = dram.access(1000.0)
        assert second == pytest.approx(1000.0 + dram.latency_cycles)
        assert second < first + 1000.0 + dram.cycles_per_line


class TestStats:
    def test_access_count(self):
        dram = DramModel()
        for _ in range(5):
            dram.access(0.0)
        assert dram.accesses == 5

    def test_utilisation(self):
        dram = DramModel()
        dram.access(0.0)
        util = dram.utilisation(dram.cycles_per_line * 2)
        assert util == pytest.approx(0.5)

    def test_utilisation_capped_at_one(self):
        dram = DramModel()
        for _ in range(100):
            dram.access(0.0)
        assert dram.utilisation(1.0) == 1.0

    def test_utilisation_of_zero_window(self):
        assert DramModel().utilisation(0.0) == 0.0

    def test_reset_stats(self):
        dram = DramModel()
        dram.access(0.0)
        dram.reset_stats()
        assert dram.accesses == 0 and dram.busy_cycles == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DramModel(latency_ns=0)
        with pytest.raises(ValueError):
            DramModel(bandwidth_gbps=-1)
