"""Unit tests for the serving building blocks (repro.serve.*) and the
exec-layer hardening that rode along: journal mid-file corruption
tolerance and deterministic seeded backoff jitter."""

from __future__ import annotations

import json
import os

import pytest

from repro.exec import CRASH, HANG, QUARANTINED, ExecConfig, RunJournal
from repro.exec.spec import RunSpec
from repro.obs.metrics import MetricsRegistry, install_standard_metrics
from repro.obs.probes import ProbeBus
from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    JobQueue,
    QueueFull,
    RateLimiter,
    ResultStore,
    TokenBucket,
    record_digest,
)


def spec_for(workload: str = "PR_KR", tech: str = "svr16") -> RunSpec:
    return RunSpec.make(workload, tech, scale="tiny")


# ---------------------------------------------------------------------------
# Content-addressed result store.
# ---------------------------------------------------------------------------

class TestResultStore:
    def record(self, key: str = "ab12") -> dict:
        return {"event": "cell", "key": key, "status": "ok",
                "result": {"ipc": 1.5}}

    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        record = self.record()
        store.put("ab12", record)
        assert store.get("ab12") == record
        assert "ab12" in store
        assert store.keys() == ["ab12"]

    def test_get_miss_is_none(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get("dead") is None
        assert store.corrupt_detected == 0

    def test_key_validation(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for bad in ("", "../evil", "UPPER", "a b"):
            with pytest.raises(ValueError, match="hex config hash"):
                store.get(bad)

    def test_entry_embeds_checksum(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        record = self.record()
        path = store.put("ab12", record)
        entry = json.loads(path.read_text())
        assert entry["v"] == 1
        assert entry["key"] == "ab12"
        assert entry["sha256"] == record_digest(record)

    @pytest.mark.parametrize("corruption", [
        b"{ not json",                                   # torn write
        b'{"v": 1, "record": "not-a-cell"}',             # wrong shape ok
        b'"just a string"',                              # not a dict
    ])
    def test_corrupt_entry_quarantined(self, tmp_path, corruption):
        seen = []
        store = ResultStore(tmp_path / "store",
                            on_corrupt=lambda k, r: seen.append((k, r)))
        store.put("ab12", self.record())
        store.entry_path("ab12").write_bytes(corruption)
        assert store.get("ab12") is None
        assert store.corrupt_detected == 1
        assert seen and seen[0][0] == "ab12"
        # Quarantined, not deleted: the bad bytes survive for forensics.
        assert not store.entry_path("ab12").exists()
        assert list(tmp_path.glob("store/ab12.corrupt.*"))

    def test_flipped_bit_fails_checksum(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("ab12", self.record())
        path = store.entry_path("ab12")
        blob = path.read_text().replace('"ipc": 1.5', '"ipc": 9.5')
        path.write_text(blob)
        assert store.get("ab12") is None
        assert store.corrupt_detected == 1

    def test_key_mismatch_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("ab12", self.record())
        os.replace(store.entry_path("ab12"), store.entry_path("cd34"))
        assert store.get("cd34") is None
        assert store.corrupt_detected == 1

    def test_verify_splits_ok_and_bad(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("aa01", self.record("aa01"))
        store.put("bb02", self.record("bb02"))
        store.entry_path("bb02").write_text("garbage")
        ok, bad = store.verify()
        assert ok == ["aa01"]
        assert bad == ["bb02"]

    def test_rebuild_from_journal(self, tmp_path):
        journal = RunJournal(tmp_path / "ledger.jsonl")
        journal.append_cell(key="aa01", workload="w", technique="t",
                            scale="tiny", status="ok", attempts=1,
                            elapsed_s=0.1, result={"ipc": 1.0})
        journal.append_cell(key="bb02", workload="w", technique="t",
                            scale="tiny", status="failed", attempts=2,
                            elapsed_s=0.2, failure={"kind": "crash"})
        store = ResultStore(tmp_path / "store")
        assert store.rebuild(journal) == 1      # failures are not cached
        assert store.get("aa01") is not None
        assert store.get("bb02") is None
        # Healthy entries keep their bytes on a second rebuild.
        before = store.entry_path("aa01").read_bytes()
        assert store.rebuild(journal) == 0
        assert store.entry_path("aa01").read_bytes() == before

    def test_rebuild_repopulates_quarantined_entry(self, tmp_path):
        journal = RunJournal(tmp_path / "ledger.jsonl")
        journal.append_cell(key="aa01", workload="w", technique="t",
                            scale="tiny", status="ok", attempts=1,
                            elapsed_s=0.1, result={"ipc": 1.0})
        store = ResultStore(tmp_path / "store")
        store.rebuild(journal)
        store.entry_path("aa01").write_text("{ torn")
        assert store.get("aa01") is None        # quarantines
        assert store.rebuild(journal) == 1      # repopulates
        assert store.get("aa01")["result"] == {"ipc": 1.0}


# ---------------------------------------------------------------------------
# Token buckets.
# ---------------------------------------------------------------------------

class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestRateLimit:
    def test_burst_then_refusal_with_retry_hint(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.acquire() == (True, 0.0)
        assert bucket.acquire() == (True, 0.0)
        granted, retry = bucket.acquire()
        assert not granted
        assert retry == pytest.approx(1.0)

    def test_refill_is_continuous_and_capped(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            assert bucket.acquire()[0]
        clock.now = 0.25                        # half a token back
        assert not bucket.acquire()[0]
        clock.now = 0.5
        assert bucket.acquire()[0]
        clock.now = 1e6                         # never exceeds burst
        for _ in range(4):
            assert bucket.acquire()[0]
        assert not bucket.acquire()[0]

    def test_limiter_isolates_clients(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        assert limiter.acquire("alice")[0]
        assert not limiter.acquire("alice")[0]
        assert limiter.acquire("bob")[0]        # separate bucket

    def test_client_table_is_bounded(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, max_clients=8,
                              clock=clock)
        for i in range(8):
            clock.now = float(i)
            limiter.acquire(f"client-{i}")
        assert limiter.clients() == 8
        clock.now = 100.0
        limiter.acquire("client-new")           # evicts the stalest
        assert limiter.clients() <= 8

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, burst=1.0, max_clients=0)


# ---------------------------------------------------------------------------
# Circuit breaker.
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def make(self, threshold: int = 3, cooldown: float = 10.0):
        clock = FakeClock()
        return CircuitBreaker(threshold=threshold, cooldown_s=cooldown,
                              clock=clock), clock

    def test_opens_after_threshold_consecutive_trips(self):
        breaker, _clock = self.make(threshold=3)
        assert breaker.record_failure("k", CRASH, "boom") == CLOSED
        assert breaker.record_failure("k", HANG, "stuck") == CLOSED
        assert breaker.record_failure("k", CRASH, "boom") == OPEN
        assert breaker.admit("k") == (False, OPEN)

    def test_success_resets_the_streak(self):
        breaker, _clock = self.make(threshold=2)
        breaker.record_failure("k", CRASH, "boom")
        breaker.record_success("k")
        assert breaker.record_failure("k", CRASH, "boom") == CLOSED
        assert breaker.state("k") == CLOSED

    def test_invalid_config_never_trips(self):
        breaker, _clock = self.make(threshold=1)
        assert breaker.record_failure("k", "invalid-config", "bad") == CLOSED
        assert breaker.admit("k") == (True, CLOSED)

    def test_half_open_admits_exactly_one_trial(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure("k", CRASH, "boom")
        assert breaker.admit("k") == (False, OPEN)
        clock.now = 11.0
        assert breaker.admit("k") == (True, HALF_OPEN)
        assert breaker.admit("k") == (False, HALF_OPEN)   # trial in flight

    def test_half_open_failure_reopens(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure("k", CRASH, "boom")
        clock.now = 11.0
        assert breaker.admit("k")[0]
        assert breaker.record_failure("k", HANG, "again") == OPEN
        clock.now = 12.0
        assert breaker.admit("k") == (False, OPEN)        # cooldown reset

    def test_half_open_success_closes(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure("k", CRASH, "boom")
        clock.now = 11.0
        assert breaker.admit("k")[0]
        breaker.record_success("k")
        assert breaker.admit("k") == (True, CLOSED)

    def test_quarantine_failure_carries_history(self):
        breaker, _clock = self.make(threshold=2)
        breaker.record_failure("k", CRASH, "segfault at 0x40")
        breaker.record_failure("k", HANG, "no result in 30s")
        failure = breaker.quarantine_failure("k", "PR_KR", "svr16")
        assert failure.kind == QUARANTINED
        assert "2 recorded" in failure.message
        assert "no result in 30s" in failure.message

    def test_history_is_bounded(self):
        breaker = CircuitBreaker(threshold=100, history_limit=4)
        for i in range(10):
            breaker.record_failure("k", CRASH, f"boom {i}")
        assert len(breaker.history("k")) == 4
        assert breaker.history("k")[-1]["message"] == "boom 9"

    def test_snapshot_lists_only_interesting_keys(self):
        breaker, _clock = self.make(threshold=1)
        breaker.record_failure("bad", CRASH, "boom")
        breaker.record_failure("meh", "invalid-config", "bad field")
        snap = breaker.snapshot()
        assert "bad" in snap and snap["bad"]["state"] == OPEN
        assert "meh" not in snap


# ---------------------------------------------------------------------------
# Job queue.
# ---------------------------------------------------------------------------

class TestJobQueue:
    def test_fifo_and_settle(self):
        queue = JobQueue(limit=4)
        job_a = queue.submit(spec_for("PR_KR"), "alice")
        job_b = queue.submit(spec_for("Camel", "svr8"), "bob")
        assert queue.depth() == 2
        spec = queue.next_cell()
        assert spec.workload == "PR_KR"
        assert queue.get(job_a.job_id).state == "running"
        settled = queue.settle(spec.key, "ok", attempts=1)
        assert [j.job_id for j in settled] == [job_a.job_id]
        assert job_a.terminal and job_a.wait_s() is not None
        assert queue.get(job_b.job_id).state == "queued"

    def test_duplicate_submissions_coalesce(self):
        queue = JobQueue(limit=4)
        first = queue.submit(spec_for(), "alice")
        second = queue.submit(spec_for(), "bob")
        assert second.coalesced and not first.coalesced
        assert queue.depth() == 1               # one cell, two jobs
        spec = queue.next_cell()
        settled = queue.settle(spec.key, "ok")
        assert {j.job_id for j in settled} == {first.job_id,
                                              second.job_id}

    def test_queue_full_raises_with_retry_hint(self):
        queue = JobQueue(limit=1, retry_after_s=3.0)
        queue.submit(spec_for(), "alice")
        with pytest.raises(QueueFull) as err:
            queue.submit(spec_for("Camel", "svr8"), "alice")
        assert err.value.retry_after_s == 3.0
        # Coalescing is exempt from the capacity check.
        assert queue.submit(spec_for(), "bob").coalesced

    def test_requeue_puts_cell_back_at_head(self):
        queue = JobQueue(limit=4)
        job = queue.submit(spec_for(), "alice")
        queue.submit(spec_for("Camel", "svr8"), "bob")
        spec = queue.next_cell()
        queue.requeue(spec.key)
        assert queue.get(job.job_id).state == "queued"
        assert queue.next_cell().key == spec.key   # head, not tail

    def test_terminal_admission(self):
        queue = JobQueue(limit=4)
        job = queue.admit_terminal(spec_for(), "alice", "ok", cached=True)
        assert job.terminal and job.cached
        assert queue.depth() == 0 and queue.inflight() == 0

    def test_done_jobs_are_evicted_beyond_max_done(self):
        queue = JobQueue(limit=64, max_done=4)
        for i in range(8):
            queue.admit_terminal(spec_for(), f"client-{i}", "ok")
        assert len(queue.jobs()) == 4

    def test_settle_requires_terminal_state(self):
        queue = JobQueue(limit=4)
        with pytest.raises(ValueError, match="terminal state"):
            queue.settle("deadbeef", "running")


# ---------------------------------------------------------------------------
# Journal hardening: corrupt line mid-file is skipped and counted.
# ---------------------------------------------------------------------------

class TestJournalCorruption:
    def write_journal(self, path, lines):
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def cell(self, key: str) -> str:
        return json.dumps({"event": "cell", "key": key, "status": "ok",
                           "result": {}})

    def test_midfile_corruption_skipped_with_warning(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.write_journal(path, [self.cell("aa"), "{ torn mid-file",
                                  self.cell("bb")])
        journal = RunJournal(path)
        with pytest.warns(RuntimeWarning, match="line 2"):
            records = journal.load()
        assert sorted(records) == ["aa", "bb"]
        assert journal.skipped_records == 1

    def test_torn_trailing_line_still_silent(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.write_journal(path, [self.cell("aa"), '{"event": "cell", "ke'])
        journal = RunJournal(path)
        records = journal.load()                # no warning expected
        assert sorted(records) == ["aa"]
        assert journal.skipped_records == 0

    def test_skip_feeds_the_metric(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.write_journal(path, [self.cell("aa"), "garbage",
                                  "more garbage", self.cell("bb")])
        bus = ProbeBus()
        registry = MetricsRegistry()
        install_standard_metrics(bus, registry)
        journal = RunJournal(path, bus=bus)
        with pytest.warns(RuntimeWarning):
            journal.load()
        assert journal.skipped_records == 2
        snap = registry.snapshot()
        assert snap["exec.journal_skipped_records"] == 2


# ---------------------------------------------------------------------------
# Deterministic seeded backoff jitter.
# ---------------------------------------------------------------------------

class TestBackoffJitter:
    def test_full_sequence_is_deterministic_and_capped(self):
        cfg = ExecConfig(backoff_s=1.0, backoff_factor=2.0,
                         max_backoff_s=3.0, backoff_jitter=0.5,
                         jitter_seed=7)
        sequence = [cfg.backoff_delay(a, "deadbeef") for a in range(1, 6)]
        assert sequence == [cfg.backoff_delay(a, "deadbeef")
                            for a in range(1, 6)]
        # Jitter stays within +/-50% of the un-jittered curve, and the
        # cap re-applies after jitter: nothing ever exceeds max_backoff_s.
        base = [1.0, 2.0, 3.0, 3.0, 3.0]
        for value, expected in zip(sequence, base):
            assert 0.5 * expected <= value <= min(1.5 * expected, 3.0)
            assert value <= 3.0
        # Jitter actually perturbs (astronomically unlikely to all tie).
        assert sequence != base

    def test_different_keys_and_seeds_decorrelate(self):
        cfg_a = ExecConfig(backoff_jitter=0.5, jitter_seed=1)
        cfg_b = ExecConfig(backoff_jitter=0.5, jitter_seed=2)
        delays_a = [cfg_a.backoff_delay(1, k) for k in ("k1", "k2", "k3")]
        assert len(set(delays_a)) == 3
        assert cfg_a.backoff_delay(2, "k1") != cfg_b.backoff_delay(2, "k1")

    def test_no_key_means_no_jitter(self):
        cfg = ExecConfig(backoff_s=1.0, backoff_factor=10.0,
                         max_backoff_s=3.0, backoff_jitter=0.5)
        assert cfg.backoff_delay(1) == 1.0
        assert cfg.backoff_delay(2) == 3.0

    def test_jitter_validation(self):
        with pytest.raises(ValueError, match="backoff_jitter"):
            ExecConfig(backoff_jitter=1.5)
