"""Tests for the SPEC surrogate suite (Fig 14 inputs)."""

import pytest

from repro.cores.functional import FunctionalCore
from repro.workloads.spec import SPEC_NAMES, _SPEC_RECIPES, build_spec


class TestSuiteShape:
    def test_23_components(self):
        """One surrogate per SPECrate 2017 bar in Fig 14."""
        assert len(SPEC_NAMES) == 23

    def test_every_name_has_a_recipe(self):
        for name in SPEC_NAMES:
            assert name in _SPEC_RECIPES

    def test_archetype_diversity(self):
        archetypes = {_SPEC_RECIPES[n][0] for n in SPEC_NAMES}
        assert archetypes == {"stream", "copy", "stencil", "compute",
                              "cached", "short"}

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_spec("doom3")


class TestExecution:
    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_runs_to_halt(self, name):
        workload = build_spec(name, repeats=1)
        core = FunctionalCore(workload.program, workload.memory)
        core.run(3_000_000)
        assert core.halted, f"{name} did not halt"
        assert core.instructions > 100

    def test_copy_kernel_writes_dst(self):
        workload = build_spec("lbm", repeats=1)
        core = FunctionalCore(workload.program, workload.memory)
        core.run(3_000_000)
        src, _ = workload.memory.allocation("A")
        dst, _ = workload.memory.allocation("B")
        for i in range(0, 64, 7):
            assert (workload.memory.read_word(dst + 8 * i)
                    == (workload.memory.read_word(src + 8 * i) + 1)
                    & ((1 << 64) - 1))

    def test_stencil_kernel_sums_neighbours(self):
        workload = build_spec("roms", repeats=1)
        core = FunctionalCore(workload.program, workload.memory)
        core.run(5_000_000)
        src, _ = workload.memory.allocation("A")
        dst, _ = workload.memory.allocation("B")
        mem = workload.memory
        for i in range(1, 50, 7):
            expected = (mem.read_word(src + 8 * (i - 1))
                        + mem.read_word(src + 8 * i)
                        + mem.read_word(src + 8 * (i + 1))) & ((1 << 64) - 1)
            assert mem.read_word(dst + 8 * i) == expected

    def test_repeats_scale_work(self):
        one = build_spec("namd", repeats=1)
        core1 = FunctionalCore(one.program, one.memory)
        core1.run(10_000_000)
        four = build_spec("namd", repeats=4)
        core4 = FunctionalCore(four.program, four.memory)
        core4.run(40_000_000)
        assert core4.instructions > 3 * core1.instructions
