"""Tests for the workload registry and the experiment runner."""

import pytest

from repro.harness.runner import (
    MAIN_TECHNIQUES,
    SimResult,
    TechniqueConfig,
    run,
    technique,
)
from repro.svr.config import LoopBoundPolicy, RecyclingPolicy
from repro.workloads.registry import (
    GAP_WORKLOADS,
    HPC_WORKLOADS,
    IRREGULAR_WORKLOADS,
    SPEC_WORKLOADS,
    build_workload,
    workload_names,
)


class TestRegistry:
    def test_paper_suite_is_33_workloads(self):
        """5 GAP kernels x 5 inputs + 8 HPC-DB = the paper's 33."""
        assert len(IRREGULAR_WORKLOADS) == 33
        assert len(GAP_WORKLOADS) == 25
        assert len(HPC_WORKLOADS) == 8

    def test_spec_suite_is_23(self):
        assert len(SPEC_WORKLOADS) == 23

    @pytest.mark.parametrize("name", ["PR_KR", "BFS_UR", "SSSP_TW",
                                      "Camel", "NAS-IS", "Randacc",
                                      "perlbench"])
    def test_build_workload_names(self, name):
        workload = build_workload(name, "tiny")
        assert workload.name == name or workload.category == "spec"
        assert len(workload.program) > 0

    def test_fresh_builds_are_independent(self):
        a = build_workload("PR_UR", "tiny")
        b = build_workload("PR_UR", "tiny")
        assert a.memory is not b.memory

    def test_sssp_graphs_are_weighted(self):
        workload = build_workload("SSSP_KR", "tiny")
        assert workload.meta["graph"].weights is not None

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            build_workload("FOO_KR", "tiny")
        with pytest.raises(ValueError):
            build_workload("FOO", "tiny")
        with pytest.raises(ValueError):
            build_workload("PR_KR", "giant")

    def test_workload_names_suites(self):
        assert workload_names("gap") == GAP_WORKLOADS
        assert workload_names("hpc") == HPC_WORKLOADS
        assert workload_names("spec") == SPEC_WORKLOADS
        with pytest.raises(ValueError):
            workload_names("games")


class TestTechniquePresets:
    def test_main_techniques_cover_fig1_columns(self):
        assert MAIN_TECHNIQUES == ("inorder", "imp", "ooo", "svr8", "svr16",
                                   "svr32", "svr64", "svr128")

    def test_inorder_preset(self):
        cfg = technique("inorder")
        assert cfg.core == "inorder" and cfg.svr is None
        assert not cfg.memory.imp_prefetcher

    def test_imp_preset_enables_prefetcher(self):
        assert technique("imp").memory.imp_prefetcher

    def test_svr_presets_set_length(self):
        for n in (8, 16, 32, 64, 128):
            cfg = technique(f"svr{n}")
            assert cfg.svr.vector_length == n
            assert cfg.core == "inorder"

    def test_svr_overrides(self):
        cfg = technique("svr16", policy=LoopBoundPolicy.MAXLENGTH,
                        recycling=RecyclingPolicy.DVR, srf_entries=2)
        assert cfg.svr.policy is LoopBoundPolicy.MAXLENGTH
        assert cfg.svr.srf_entries == 2

    def test_with_memory_override(self):
        cfg = technique("svr16").with_memory(l1_mshrs=4,
                                             dram_bandwidth_gbps=25.0)
        assert cfg.memory.l1_mshrs == 4
        assert cfg.memory.dram_bandwidth_gbps == 25.0
        # Base config untouched (dataclasses.replace semantics).
        assert technique("svr16").memory.l1_mshrs == 16

    def test_with_svr_requires_svr(self):
        with pytest.raises(ValueError):
            technique("inorder").with_svr(vector_length=8)

    def test_unknown_technique(self):
        with pytest.raises(ValueError):
            technique("tpu")


class TestRun:
    def test_returns_simresult_with_sane_fields(self):
        result = run("PR_UR", "inorder", scale="tiny")
        assert isinstance(result, SimResult)
        assert result.core.instructions > 0
        assert result.cpi > 0 and result.ipc > 0
        assert result.energy_per_instruction_nj > 0
        assert abs(result.cpi * result.ipc - 1.0) < 1e-9

    def test_accepts_technique_object(self):
        result = run("PR_UR", technique("svr16"), scale="tiny")
        assert result.technique == "svr16"
        assert result.svr is not None
        assert result.svr_accuracy is not None

    def test_non_svr_run_has_no_svr_stats(self):
        result = run("PR_UR", "ooo", scale="tiny")
        assert result.svr is None and result.svr_accuracy is None

    def test_custom_window(self):
        result = run("PR_UR", "inorder", scale="tiny", warmup=100,
                     measure=500)
        assert result.core.instructions == 500

    def test_cpi_stack_covers_cpi(self):
        """The stack decomposes CPI; overlap between stall causes can make
        the attributed sum slightly exceed it, never undershoot."""
        result = run("PR_UR", "inorder", scale="tiny")
        stack = result.cpi_stack()
        total = sum(stack.values())
        assert result.cpi <= total + 1e-9
        assert total <= result.cpi * 1.15

    def test_svr_beats_inorder_on_gather_workload(self):
        base = run("Camel", "inorder", scale="tiny")
        svr = run("Camel", "svr16", scale="tiny")
        assert svr.ipc > base.ipc

    def test_unknown_core_kind_rejected(self):
        # Validation happens at construction now (fail fast, before any
        # simulation work is queued).
        with pytest.raises(ValueError, match="core"):
            TechniqueConfig("bad", core="vliw")
