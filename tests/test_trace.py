"""Tests for the instruction-trace capture facility."""

import pytest

from repro.harness.trace import TraceRecord, capture, render, summarize


class TestCapture:
    def test_captures_requested_count(self):
        records = capture("Camel", "inorder", scale="tiny", warmup=200,
                          count=150)
        assert len(records) == 150
        assert records[0].index == 0

    def test_issue_times_monotone(self):
        records = capture("Camel", "inorder", scale="tiny", count=150)
        issues = [r.issue for r in records]
        assert all(b >= a for a, b in zip(issues, issues[1:]))

    def test_completion_after_issue(self):
        records = capture("Camel", "inorder", scale="tiny", count=150)
        assert all(r.completion >= r.issue for r in records)

    def test_memory_ops_carry_level(self):
        records = capture("Camel", "inorder", scale="tiny", count=200)
        loads = [r for r in records if r.op == "ld"]
        assert loads
        assert all(r.level in ("l1", "l2", "dram") for r in loads)

    def test_svr_trace_shows_lanes_and_prm(self):
        records = capture("Camel", "svr16", scale="tiny", count=300)
        assert sum(r.svi_lanes for r in records) > 0
        assert any(r.in_prm for r in records)

    def test_plain_core_has_no_svr_activity(self):
        records = capture("Camel", "inorder", scale="tiny", count=150)
        assert all(r.svi_lanes == 0 and not r.in_prm for r in records)

    def test_ooo_rejected(self):
        with pytest.raises(ValueError):
            capture("Camel", "ooo", scale="tiny")


class TestEdgeCases:
    def test_summarize_empty_window(self):
        assert summarize([]) == {}

    def test_window_without_dram_ops_omits_dram_latency(self):
        records = [
            TraceRecord(0, 0, "ld", 0.0, 2.0, "l1", 0, False),
            TraceRecord(1, 1, "add", 2.0, 3.0, None, 0, False),
            TraceRecord(2, 2, "ld", 3.0, 5.0, "l2", 0, False),
        ]
        summary = summarize(records)
        assert summary["dram_ops"] == 0.0
        assert summary["memory_ops"] == 2.0
        assert "mean_dram_latency" not in summary

    def test_render_clamps_width_on_single_cycle_records(self):
        # All records issue and complete in the same instant: span is
        # clamped to 1 cycle and every bar must stay inside the frame.
        records = [TraceRecord(i, i, "add", 10.0, 10.0, None, 0, False)
                   for i in range(3)]
        text = render(records, width=20)
        lines = text.split("\n")
        assert "(1 cycles, 3 instructions)" in lines[0]
        for line in lines[1:]:
            bar = line.split("|")[1]
            assert len(bar) == 20
            assert bar.count("#") == 1   # zero-latency still visible

    def test_render_zero_latency_tail_record(self):
        # A zero-latency record at the far right edge must not overflow.
        records = [
            TraceRecord(0, 0, "ld", 0.0, 100.0, "dram", 0, False),
            TraceRecord(1, 1, "add", 100.0, 100.0, None, 0, False),
        ]
        text = render(records, width=30)
        for line in text.split("\n")[1:]:
            assert len(line.split("|")[1]) == 30


class TestRender:
    def test_render_contains_all_rows(self):
        records = capture("Camel", "svr16", scale="tiny", count=40)
        text = render(records)
        assert text.count("\n") == 40      # header + one line each
        assert "#" in text

    def test_render_empty(self):
        assert "empty" in render([])

    def test_latency_property(self):
        record = TraceRecord(0, 0, "ld", 10.0, 110.0, "dram", 0, False)
        assert record.latency == 100.0


class TestSummarize:
    def test_summary_fields(self):
        records = capture("Camel", "svr16", scale="tiny", count=300)
        summary = summarize(records)
        assert summary["instructions"] == 300
        assert summary["memory_ops"] > 0
        assert summary["svi_lanes"] > 0
        assert 0.0 <= summary["prm_share"] <= 1.0

    def test_dram_latency_reported_when_missing(self):
        records = capture("Randacc", "inorder", scale="tiny", count=400)
        summary = summarize(records)
        if summary["dram_ops"]:
            assert summary["mean_dram_latency"] > 50.0

    def test_empty_summary(self):
        assert summarize([]) == {}

    def test_svr_compresses_dram_time(self):
        """The whole point: with SVR the same window has fewer demand DRAM
        round trips."""
        plain = summarize(capture("Camel", "inorder", scale="tiny",
                                  warmup=800, count=400))
        svr = summarize(capture("Camel", "svr16", scale="tiny",
                                warmup=800, count=400))
        assert svr["span_cycles"] < plain["span_cycles"]
        assert svr["dram_ops"] <= plain["dram_ops"]
