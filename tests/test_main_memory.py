"""Unit tests for the functional memory and its allocator."""

import numpy as np
import pytest

from repro.memory.main_memory import MainMemory


class TestAccess:
    def test_read_write_roundtrip(self):
        mem = MainMemory(capacity_bytes=1 << 20)
        mem.write_word(0x100, 42)
        assert mem.read_word(0x100) == 42

    def test_values_wrap_to_uint64(self):
        mem = MainMemory(capacity_bytes=1 << 20)
        mem.write_word(0x100, -1)
        assert mem.read_word(0x100) == (1 << 64) - 1

    def test_out_of_range_load_raises(self):
        mem = MainMemory(capacity_bytes=1 << 12)
        with pytest.raises(IndexError):
            mem.read_word(1 << 20)

    def test_out_of_range_store_raises(self):
        mem = MainMemory(capacity_bytes=1 << 12)
        with pytest.raises(IndexError):
            mem.write_word(1 << 20, 1)

    def test_capacity_must_be_word_multiple(self):
        with pytest.raises(ValueError):
            MainMemory(capacity_bytes=100)


class TestAllocator:
    def test_alloc_is_line_aligned(self):
        mem = MainMemory(capacity_bytes=1 << 20, base=0x100)
        a = mem.alloc(10)
        b = mem.alloc(10)
        assert a % 64 == 0 and b % 64 == 0
        assert b >= a + 10

    def test_alloc_array_contents(self):
        mem = MainMemory(capacity_bytes=1 << 20)
        addr = mem.alloc_array([1, 2, 3])
        assert [mem.read_word(addr + 8 * i) for i in range(3)] == [1, 2, 3]

    def test_alloc_array_handles_negative_values(self):
        mem = MainMemory(capacity_bytes=1 << 20)
        addr = mem.alloc_array(np.array([-1], dtype=np.int64))
        assert mem.read_word(addr) == (1 << 64) - 1

    def test_alloc_zeros(self):
        mem = MainMemory(capacity_bytes=1 << 20)
        addr = mem.alloc_zeros(4)
        assert all(mem.read_word(addr + 8 * i) == 0 for i in range(4))

    def test_read_array(self):
        mem = MainMemory(capacity_bytes=1 << 20)
        addr = mem.alloc_array([5, 6, 7])
        np.testing.assert_array_equal(mem.read_array(addr, 3), [5, 6, 7])

    def test_named_allocation_lookup(self):
        mem = MainMemory(capacity_bytes=1 << 20)
        addr = mem.alloc(128, name="table")
        assert mem.allocation("table") == (addr, 128)

    def test_exhaustion_raises_memory_error(self):
        mem = MainMemory(capacity_bytes=1 << 12, base=0)
        with pytest.raises(MemoryError):
            mem.alloc(1 << 13)

    def test_zero_size_alloc_rejected(self):
        mem = MainMemory(capacity_bytes=1 << 12)
        with pytest.raises(ValueError):
            mem.alloc(0)

    def test_footprint_tracks_brk(self):
        mem = MainMemory(capacity_bytes=1 << 20, base=0x100)
        assert mem.footprint_bytes == 0
        mem.alloc(64)
        assert mem.footprint_bytes >= 64

    def test_base_region_left_unmapped(self):
        mem = MainMemory(capacity_bytes=1 << 20, base=0x1000)
        addr = mem.alloc(8)
        assert addr >= 0x1000
