"""Tests for the CFG layer: blocks, edges, dominators and natural loops."""

import pytest

from repro.analysis import build_cfg
from repro.isa.program import ProgramBuilder

from conftest import gather_program


def simple_loop():
    """count-down loop: one header/latch block plus prologue and exit."""
    b = ProgramBuilder("loop")
    b.li("t0", 4)
    b.label("loop")
    b.addi("t0", "t0", -1)
    b.bnez("t0", "loop")
    b.halt()
    return b.build()


def diamond():
    """if/else rejoin: entry -> (then | else) -> join."""
    b = ProgramBuilder("diamond")
    b.li("t0", 1)
    b.beqz("t0", "else_")
    b.li("t1", 10)
    b.jmp("join")
    b.label("else_")
    b.li("t1", 20)
    b.label("join")
    b.mv("t2", "t1")
    b.halt()
    return b.build()


def nested_loops():
    """outer loop over an inner count-down loop."""
    b = ProgramBuilder("nested")
    b.li("s0", 3)
    b.label("outer")
    b.li("t0", 4)
    b.label("inner")
    b.addi("t0", "t0", -1)
    b.bnez("t0", "inner")
    b.addi("s0", "s0", -1)
    b.bnez("s0", "outer")
    b.halt()
    return b.build()


class TestBlocks:
    def test_gather_partitions_into_three_blocks(self):
        cfg = build_cfg(gather_program(0x1000, 0x2000, 8))
        # prologue [0,5), loop body [5,15), halt [15,16)
        assert sorted(cfg.blocks) == [0, 5, 15]
        assert cfg.blocks[0].successors == [5]
        assert sorted(cfg.blocks[5].successors) == [5, 15]
        assert cfg.blocks[15].successors == []
        assert cfg.blocks[5].predecessors == [0, 5]

    def test_blocks_partition_every_pc_exactly_once(self):
        program = diamond()
        cfg = build_cfg(program)
        covered = sorted(pc for blk in cfg.blocks.values() for pc in blk.pcs)
        assert covered == list(range(len(program)))

    def test_block_of_maps_interior_pcs(self):
        cfg = build_cfg(gather_program(0x1000, 0x2000, 8))
        assert cfg.block_of(7).start == 5
        assert cfg.block_of(0).start == 0
        with pytest.raises(IndexError):
            cfg.block_of(99)

    def test_halt_terminated_program_has_no_off_end(self):
        cfg = build_cfg(simple_loop())
        assert cfg.off_end_pcs == []

    def test_missing_halt_is_off_end(self):
        b = ProgramBuilder("nohalt")
        b.li("t0", 1)
        b.addi("t0", "t0", 1)
        cfg = build_cfg(b.build())
        assert cfg.off_end_pcs == [1]

    def test_empty_program(self):
        cfg = build_cfg(ProgramBuilder("empty").build())
        assert cfg.blocks == {}
        assert cfg.rpo == []
        assert cfg.loops == []


class TestOrderAndDominators:
    def test_rpo_starts_at_entry_and_covers_reachable(self):
        cfg = build_cfg(diamond())
        assert cfg.rpo[0] == cfg.entry
        assert set(cfg.rpo) == set(cfg.reachable)

    def test_diamond_dominators(self):
        cfg = build_cfg(diamond())
        join = max(b for b in cfg.blocks if b != max(cfg.blocks))
        # Entry dominates everything; neither arm dominates the join.
        arms = [b for b in cfg.blocks
                if b not in (cfg.entry, join) and cfg.blocks[b].successors]
        for block in cfg.blocks:
            assert cfg.dominates(cfg.entry, block)
        for arm in arms:
            if arm != join:
                assert not cfg.dominates(arm, join) or arm == cfg.entry

    def test_loop_header_dominates_body(self):
        cfg = build_cfg(nested_loops())
        for loop in cfg.loops:
            for block in loop.body:
                assert cfg.dominates(loop.header, block)

    def test_unreachable_block_after_jmp(self):
        b = ProgramBuilder("unreach")
        b.jmp("end")
        b.li("t0", 1)          # never reached
        b.label("end")
        b.halt()
        cfg = build_cfg(b.build())
        assert [blk.start for blk in cfg.unreachable_blocks] == [1]
        assert 1 not in cfg.rpo


class TestLoops:
    def test_simple_loop_found(self):
        cfg = build_cfg(simple_loop())
        assert len(cfg.loops) == 1
        loop = cfg.loops[0]
        assert loop.header == 1
        assert loop.body == frozenset({1})
        assert loop.back_edges == (1,)
        assert loop.exits == (3,)

    def test_nested_loops_innermost_first(self):
        cfg = build_cfg(nested_loops())
        assert len(cfg.loops) == 2
        inner, outer = cfg.loops
        assert len(inner.body) < len(outer.body)
        assert inner.body < outer.body

    def test_innermost_loop_of_pc(self):
        program = nested_loops()
        cfg = build_cfg(program)
        inner, outer = cfg.loops
        assert cfg.innermost_loop(inner.header) is inner
        # The outer latch block is only in the outer loop.
        latch = outer.back_edges[0]
        assert cfg.innermost_loop(latch) is outer
        assert cfg.innermost_loop(0) is None

    def test_loop_pcs_ascending_and_complete(self):
        cfg = build_cfg(nested_loops())
        inner, _ = cfg.loops
        pcs = cfg.loop_pcs(inner)
        assert pcs == sorted(pcs)
        assert set(pcs) == {pc for b in inner.body
                            for pc in cfg.blocks[b].pcs}

    def test_gather_loop_shape(self):
        cfg = build_cfg(gather_program(0x1000, 0x2000, 8))
        assert len(cfg.loops) == 1
        loop = cfg.loops[0]
        assert loop.header == 5
        assert cfg.loop_pcs(loop) == list(range(5, 15))
