"""Additional graph-substrate tests: weighted generation, CSR utilities."""

import numpy as np
import pytest

from repro.workloads.graphs import (
    CSRGraph,
    graph_for_input,
    kronecker_graph,
    power_law_graph,
    uniform_random_graph,
)


class TestWeightedGraphs:
    @pytest.mark.parametrize("maker", [
        lambda: uniform_random_graph(128, 4, seed=1, weighted=True),
        lambda: kronecker_graph(7, 4, seed=2, weighted=True),
        lambda: power_law_graph(128, 4, alpha=2.2, seed=3, name="w",
                                weighted=True),
    ])
    def test_weights_parallel_to_neighbors(self, maker):
        g = maker()
        assert g.weights is not None
        assert len(g.weights) == len(g.neighbors)
        assert g.weights.min() >= 1 and g.weights.max() < 64

    def test_weighted_input_builder(self):
        g = graph_for_input("UR", "tiny", weighted=True)
        assert g.weights is not None

    def test_unweighted_by_default(self):
        assert graph_for_input("UR", "tiny").weights is None


class TestCsrUtilities:
    def make(self):
        offsets = np.array([0, 2, 3, 3], dtype=np.int64)
        neighbors = np.array([1, 2, 0], dtype=np.int64)
        return CSRGraph(offsets, neighbors, name="toy")

    def test_counts(self):
        g = self.make()
        assert g.num_nodes == 3
        assert g.num_edges == 3

    def test_degrees(self):
        g = self.make()
        assert [g.degree(u) for u in range(3)] == [2, 1, 0]

    def test_out_neighbors_slicing(self):
        g = self.make()
        assert list(g.out_neighbors(0)) == [1, 2]
        assert list(g.out_neighbors(2)) == []

    def test_average_degree(self):
        assert self.make().average_degree == 1.0

    def test_degree_skew(self):
        assert self.make().degree_skew() == 2.0

    def test_degree_skew_empty_graph(self):
        g = CSRGraph(np.array([0], dtype=np.int64),
                     np.array([], dtype=np.int64))
        assert g.degree_skew() == 0.0


class TestGeneratorEdges:
    def test_kronecker_permutation_decorrelates_ids(self):
        """Without permutation, low vertex ids would hog the edges."""
        g = kronecker_graph(scale=10, edge_factor=8, seed=2)
        degrees = np.diff(g.offsets)
        low_half = degrees[:512].sum()
        assert low_half < 0.8 * g.num_edges

    def test_power_law_respects_degree_cap(self):
        g = power_law_graph(512, 8, alpha=1.8, seed=9, name="cap",
                            max_degree_frac=1 / 16)
        assert np.diff(g.offsets).max() <= max(16, 512 // 16)

    def test_zipf_graphs_have_hubs(self):
        g = power_law_graph(1024, 8, alpha=1.9, seed=9, name="hubby",
                            max_degree_frac=1 / 8)
        degrees = np.diff(g.offsets)
        assert degrees.max() > 5 * degrees.mean()
