"""Unit tests for the taint tracker and speculative register file."""

from repro.svr.config import RecyclingPolicy
from repro.svr.srf import SpeculativeRegisterFile
from repro.svr.taint_tracker import TaintTracker


class TestTaintTracker:
    def test_initial_state_clean(self):
        taint = TaintTracker()
        assert not taint.is_tainted(5)
        assert not taint.is_vectorizable(5)

    def test_map_taints_and_maps(self):
        taint = TaintTracker()
        taint.map(5, srf_id=2, offset=1)
        assert taint.is_tainted(5)
        assert taint.is_vectorizable(5)
        assert taint.srf_of(5) == 2

    def test_unmap_keeps_taint(self):
        """Recycled registers stay tainted but lose vectorizability."""
        taint = TaintTracker()
        taint.map(5, 2, 0)
        taint.unmap(5)
        assert taint.is_tainted(5)
        assert not taint.is_vectorizable(5)

    def test_untaint_returns_freed_srf(self):
        taint = TaintTracker()
        taint.map(5, 2, 0)
        assert taint.untaint(5) == 2
        assert not taint.is_tainted(5)

    def test_untaint_unmapped_returns_none(self):
        taint = TaintTracker()
        assert taint.untaint(5) is None

    def test_lru_victim_is_stalest_read(self):
        taint = TaintTracker()
        taint.map(3, 0, offset=10)
        taint.map(4, 1, offset=5)
        taint.touch_read(3, 20)
        assert taint.lru_victim() == 4

    def test_lru_victim_none_when_nothing_mapped(self):
        assert TaintTracker().lru_victim() is None

    def test_clear_resets_everything(self):
        taint = TaintTracker()
        taint.map(5, 2, 0)
        taint.clear()
        assert not taint.is_tainted(5)
        assert taint.mapped_registers() == []

    def test_mapped_registers_listing(self):
        taint = TaintTracker()
        taint.map(3, 0, 0)
        taint.map(7, 1, 0)
        assert taint.mapped_registers() == [3, 7]


class TestSrfAllocation:
    def test_allocate_assigns_free_entries(self):
        taint = TaintTracker()
        srf = SpeculativeRegisterFile(entries=2, lanes=4)
        a = srf.allocate(3, taint)
        taint.map(3, a, 0)
        b = srf.allocate(4, taint)
        taint.map(4, b, 0)
        assert a != b

    def test_reallocate_same_register_reuses_entry(self):
        """Footnote 1: one live copy per architectural register."""
        taint = TaintTracker()
        srf = SpeculativeRegisterFile(entries=2, lanes=4)
        a = srf.allocate(3, taint)
        taint.map(3, a, 0)
        srf.write_lane(a, 0, 99, 1.0)
        again = srf.allocate(3, taint)
        assert again == a
        # Reset on reallocation: old lanes invalid.
        _, _, valid = srf.read_lane(a, 0)
        assert not valid

    def test_lru_policy_recycles_when_full(self):
        taint = TaintTracker()
        srf = SpeculativeRegisterFile(entries=1, lanes=4,
                                      policy=RecyclingPolicy.LRU)
        a = srf.allocate(3, taint)
        taint.map(3, a, offset=0)
        b = srf.allocate(4, taint)
        assert b == a                      # stolen from register 3
        assert not taint.is_vectorizable(3)  # 3 was unmapped
        assert taint.is_tainted(3)           # but stays tainted
        assert srf.recycles == 1

    def test_dvr_policy_fails_when_full(self):
        taint = TaintTracker()
        srf = SpeculativeRegisterFile(entries=1, lanes=4,
                                      policy=RecyclingPolicy.DVR)
        a = srf.allocate(3, taint)
        taint.map(3, a, 0)
        assert srf.allocate(4, taint) is None
        assert srf.allocation_failures == 1
        assert taint.is_vectorizable(3)    # victim untouched

    def test_release_returns_entry_to_pool(self):
        taint = TaintTracker()
        srf = SpeculativeRegisterFile(entries=1, lanes=4,
                                      policy=RecyclingPolicy.DVR)
        a = srf.allocate(3, taint)
        taint.map(3, a, 0)
        taint.untaint(3)
        srf.release(a)
        assert srf.allocate(4, taint) == a

    def test_release_all(self):
        taint = TaintTracker()
        srf = SpeculativeRegisterFile(entries=3, lanes=4)
        for reg in (3, 4, 5):
            taint.map(reg, srf.allocate(reg, taint), 0)
        srf.release_all()
        taint.clear()
        assert srf.allocate(9, taint) is not None


class TestSrfLanes:
    def test_lane_write_read(self):
        taint = TaintTracker()
        srf = SpeculativeRegisterFile(entries=1, lanes=4)
        entry = srf.allocate(3, taint)
        srf.write_lane(entry, 2, 42, 100.0)
        value, ready, valid = srf.read_lane(entry, 2)
        assert (value, ready, valid) == (42, 100.0, True)

    def test_unwritten_lane_invalid(self):
        taint = TaintTracker()
        srf = SpeculativeRegisterFile(entries=1, lanes=4)
        entry = srf.allocate(3, taint)
        _, _, valid = srf.read_lane(entry, 1)
        assert not valid

    def test_lane_count_property(self):
        srf = SpeculativeRegisterFile(entries=2, lanes=16)
        assert srf.lanes == 16 and srf.num_entries == 2
