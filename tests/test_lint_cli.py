"""Tests for the ``python -m repro lint`` CLI surface."""

import json

from repro.__main__ import main

CLEAN_S = """\
start:
    li   a0, 0x1000
    li   a1, 8
    li   t4, 0
    li   t0, 0
loop:
    slli t1, t0, 3
    add  t1, a0, t1
    ld   t2, t1, 0
    add  t4, t4, t2
    addi t0, t0, 1
    cmp_lt t3, t0, a1
    bnez t3, loop
    st   t4, a0, 0
    halt
"""

NO_HALT_S = """\
    li a0, 0x1000
    ld t0, a0, 0
"""

BAD_LABEL_S = """\
    li a0, 1
    bnez a0, nowhere
    halt
"""


class TestWorkloadTargets:
    def test_clean_workload_exits_zero(self, capsys):
        assert main(["lint", "PR_KR"]) == 0
        out = capsys.readouterr().out
        assert "PR_KR: clean" in out
        assert "striding" in out and "indirect" in out

    def test_multiple_targets(self, capsys):
        assert main(["lint", "BFS_KR", "Camel"]) == 0
        out = capsys.readouterr().out
        assert "BFS_KR: clean" in out and "Camel: clean" in out
        assert "linted 2 target(s)" in out

    def test_unknown_workload_is_usage_error(self, capsys):
        assert main(["lint", "NOPE"]) == 2
        assert "NOPE" in capsys.readouterr().err

    def test_no_targets_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "no targets" in capsys.readouterr().err


class TestFileTargets:
    def test_clean_assembly_file(self, tmp_path, capsys):
        path = tmp_path / "clean.s"
        path.write_text(CLEAN_S)
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "clean.s: clean" in out

    def test_missing_halt_fails(self, tmp_path, capsys):
        path = tmp_path / "nohalt.s"
        path.write_text(NO_HALT_S)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "E001" in out

    def test_assembler_error_becomes_e002(self, tmp_path, capsys):
        path = tmp_path / "bad.s"
        path.write_text(BAD_LABEL_S)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "E002" in out
        assert "undefined label" in out
        assert "pc    2" in out          # assembler line number

    def test_unreadable_file_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "missing.s")]) == 2
        assert "missing.s" in capsys.readouterr().err


class TestJsonOutput:
    def test_json_single_target(self, capsys):
        assert main(["lint", "PR_KR", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["errors"] == 0
        report = data["reports"][0]
        assert report["name"] == "PR_KR"
        assert {info["class"] for info in report["loads"]} == {"striding",
                                                               "indirect"}

    def test_json_error_exit_code(self, tmp_path, capsys):
        path = tmp_path / "nohalt.s"
        path.write_text(NO_HALT_S)
        assert main(["lint", str(path), "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False and data["errors"] >= 1

    def test_all_covers_every_registered_workload(self, capsys):
        from repro.workloads.registry import workload_names

        assert main(["lint", "--all", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        expected = set(workload_names("irregular") + workload_names("spec"))
        assert {r["name"] for r in data["reports"]} == expected
        assert data["ok"] is True
        assert data["errors"] == 0 and data["warnings"] == 0

    def test_jsonl_record_appended(self, tmp_path, capsys):
        out_path = tmp_path / "lint.jsonl"
        assert main(["lint", "PR_KR", "--jsonl", str(out_path)]) == 0
        capsys.readouterr()
        lines = out_path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["kind"] == "lint"
        assert record["ok"] is True
        assert record["reports"][0]["name"] == "PR_KR"


class TestAllTextMode:
    def test_all_prints_summary_lines(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "linted 56 target(s): 0 error(s), 0 warning(s)" in out
        # Compact mode: no per-load tables unless -v.
        assert "srf-regs" not in out
