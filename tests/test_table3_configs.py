"""Table III conformance: the default configurations must encode the
paper's evaluated machines exactly."""

from repro.cores.base import CoreConfig
from repro.memory.hierarchy import MemoryConfig
from repro.svr.config import SVRConfig


class TestCoreConfig:
    def test_width_and_frequency(self):
        cfg = CoreConfig()
        assert cfg.width == 3                      # 3 instr/cycle
        assert cfg.frequency_ghz == 2.0            # 2.0 GHz

    def test_inorder_window(self):
        assert CoreConfig().scoreboard_entries == 32

    def test_ooo_window(self):
        cfg = CoreConfig()
        assert cfg.rob_entries == 32               # same in-flight count
        assert cfg.lsq_entries == 16

    def test_mispredict_penalty(self):
        assert CoreConfig().mispredict_penalty == 10.0


class TestMemoryConfig:
    def test_l1(self):
        cfg = MemoryConfig()
        assert cfg.l1_size == 64 << 10             # 64 KiB
        assert cfg.l1_assoc == 4
        assert cfg.line_bytes == 64
        assert cfg.l1_mshrs == 16

    def test_l2(self):
        cfg = MemoryConfig()
        assert cfg.l2_size == 512 << 10            # 512 KiB
        assert cfg.l2_assoc == 8

    def test_dram(self):
        cfg = MemoryConfig()
        assert cfg.dram_latency_ns == 45.0
        assert cfg.dram_bandwidth_gbps == 50.0

    def test_tlbs_and_walkers(self):
        cfg = MemoryConfig()
        assert cfg.dtlb_entries == 16
        assert cfg.stlb_entries == 2048
        assert cfg.page_table_walkers == 4

    def test_stride_prefetcher_on_by_default(self):
        assert MemoryConfig().stride_prefetcher
        assert not MemoryConfig().imp_prefetcher


class TestSvrConfig:
    def test_paper_defaults(self):
        cfg = SVRConfig()
        assert cfg.vector_length == 16             # N = 16 default
        assert cfg.srf_entries == 8                # K = 8
        assert cfg.stride_detector_entries == 32
        assert cfg.timeout_instructions == 256
        assert cfg.ewma_cap == 512
        assert cfg.waiting_mode
        assert cfg.accuracy_threshold == 0.5
        assert cfg.accuracy_warmup_events == 100

    def test_tournament_is_default_policy(self):
        from repro.svr.config import LoopBoundPolicy, RecyclingPolicy

        assert SVRConfig().policy is LoopBoundPolicy.TOURNAMENT
        assert SVRConfig().recycling is RecyclingPolicy.LRU
