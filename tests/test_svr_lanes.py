"""SoA lane-engine kernels: bit-exactness against the scalar evaluator.

Every vector kernel in :mod:`repro.svr.lanes` must agree bit-for-bit with
its scalar twin in ``repro.isa.executor._ALU_TABLE`` — that contract is
what lets the SVR unit dispatch rounds to either engine and still produce
byte-identical simulator outputs.  These tests fuzz each kernel over
adversarial 64-bit inputs (sign boundaries, wrap-around, shift extremes).
"""

import numpy as np
import pytest

from repro.isa.executor import alu_fn
from repro.isa.instructions import (
    ALU_OPS,
    CMP_OPS,
    FP_OPS,
    Instruction,
    Opcode,
)
from repro.svr.lanes import (
    LaneEngineStats,
    branch_outcomes,
    expand_group_slots,
    gather_words,
    offset_targets,
    stride_targets,
    vector_alu_fn,
)

MASK64 = (1 << 64) - 1

# Adversarial 64-bit operand pool: zero, small, sign boundaries, all-ones,
# and a pseudo-random spread (fixed seed — determinism contract).
_RNG = np.random.default_rng(0xC0FFEE)
OPERANDS = np.array(
    [0, 1, 2, 7, 63, 64, 255,
     (1 << 31) - 1, 1 << 31, (1 << 32) - 1, 1 << 32,
     (1 << 63) - 1, 1 << 63, (1 << 63) + 1, MASK64 - 1, MASK64]
    + list(_RNG.integers(0, 1 << 64, size=48, dtype=np.uint64)),
    dtype=np.uint64,
)
IMMEDIATES = [0, 1, 8, 63, 64, -1, -8, 4096, -4096, (1 << 62), -(1 << 62)]

_TWO_OPERAND = sorted(
    (op for op in ALU_OPS | FP_OPS | CMP_OPS
     if op not in (Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
                   Opcode.SLLI, Opcode.SRLI, Opcode.MULI, Opcode.LI,
                   Opcode.MV, Opcode.FMUL)),
    key=lambda op: op.value)
_IMM_OPS = sorted(
    (Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI,
     Opcode.SRLI, Opcode.MULI, Opcode.LI),
    key=lambda op: op.value)


def _make(op: Opcode, imm: int = 0) -> Instruction:
    if op in (Opcode.LI,):
        return Instruction(op, rd=1, imm=imm)
    if op in (Opcode.MV,):
        return Instruction(op, rd=1, rs1=2)
    if op in (Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
              Opcode.SLLI, Opcode.SRLI, Opcode.MULI):
        return Instruction(op, rd=1, rs1=2, imm=imm)
    return Instruction(op, rd=1, rs1=2, rs2=3)


def _cross(pool: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """All (a, b) pairs from the operand pool as two flat lane vectors."""
    a = np.repeat(pool, pool.size)
    b = np.tile(pool, pool.size)
    return a, b


class TestVectorKernelExactness:
    @pytest.mark.parametrize("op", _TWO_OPERAND, ids=lambda o: o.value)
    def test_two_operand_matches_scalar(self, op):
        inst = _make(op)
        kernel = vector_alu_fn(inst)
        scalar = alu_fn(inst)
        assert kernel is not None and scalar is not None
        a, b = _cross(OPERANDS)
        got = kernel(a, b, inst.imm)
        expect = np.array(
            [scalar(int(x), int(y), inst.imm) for x, y in
             zip(a.tolist(), b.tolist())], dtype=np.uint64)
        assert got.dtype == np.uint64
        np.testing.assert_array_equal(got, expect)

    @pytest.mark.parametrize("op", _IMM_OPS, ids=lambda o: o.value)
    @pytest.mark.parametrize("imm", IMMEDIATES)
    def test_immediate_matches_scalar(self, op, imm):
        if op in (Opcode.SLLI, Opcode.SRLI) and imm < 0:
            imm &= 63   # the assembler never emits negative shift counts
        inst = _make(op, imm=imm)
        kernel = vector_alu_fn(inst)
        scalar = alu_fn(inst)
        assert kernel is not None and scalar is not None
        a = OPERANDS
        b = np.zeros(a.shape, dtype=np.uint64)
        got = kernel(a, b, inst.imm)
        expect = np.array([scalar(int(x), 0, inst.imm) for x in a.tolist()],
                          dtype=np.uint64)
        np.testing.assert_array_equal(got, expect)

    def test_mv_matches_scalar(self):
        inst = _make(Opcode.MV)
        kernel = vector_alu_fn(inst)
        np.testing.assert_array_equal(kernel(OPERANDS, OPERANDS * 0, 0),
                                      OPERANDS)

    def test_fmul_has_no_vector_kernel(self):
        """FMUL needs an exact 128-bit intermediate: scalar fallback only."""
        inst = Instruction(Opcode.FMUL, rd=1, rs1=2, rs2=3)
        assert vector_alu_fn(inst) is None
        assert alu_fn(inst) is not None   # the scalar twin must exist

    def test_every_scalar_alu_op_is_covered_or_excluded(self):
        """Any op with a scalar evaluator either has a vector kernel or is
        a documented exclusion — a new opcode must decide explicitly."""
        excluded = {Opcode.FMUL}
        for op in sorted(ALU_OPS | FP_OPS | CMP_OPS, key=lambda o: o.value):
            inst = _make(op)
            if alu_fn(inst) is None:
                continue
            if op in excluded:
                assert vector_alu_fn(inst) is None
            else:
                assert vector_alu_fn(inst) is not None, op


class TestBranchOutcomes:
    def test_beqz(self):
        inst = Instruction(Opcode.BEQZ, rs1=1, target=0)
        values = np.array([0, 1, MASK64, 0], dtype=np.uint64)
        got = branch_outcomes(inst, values)
        expect = np.array([inst.branch_taken(int(v)) for v in values.tolist()])
        np.testing.assert_array_equal(got, expect)

    def test_bnez(self):
        inst = Instruction(Opcode.BNEZ, rs1=1, target=0)
        values = np.array([0, 1, MASK64, 0], dtype=np.uint64)
        got = branch_outcomes(inst, values)
        expect = np.array([inst.branch_taken(int(v)) for v in values.tolist()])
        np.testing.assert_array_equal(got, expect)

    def test_non_branch_raises(self):
        with pytest.raises(ValueError):
            branch_outcomes(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3),
                            np.zeros(2, dtype=np.uint64))


class TestAddressVectors:
    @pytest.mark.parametrize("stride", [8, -8, 64, 1, -1])
    def test_stride_targets_wrap_like_scalar(self, stride):
        from repro.isa.registers import wrap64

        addr = 0x1_0040
        lanes = np.arange(16)
        got = stride_targets(addr, stride, lanes)
        expect = np.array(
            [wrap64(addr + (lane + 1) * stride) for lane in range(16)],
            dtype=np.uint64)
        np.testing.assert_array_equal(got, expect)

    def test_stride_targets_negative_wraps_past_zero(self):
        from repro.isa.registers import wrap64

        got = stride_targets(8, -8, np.arange(4))
        expect = np.array([wrap64(8 - 8 * (k + 1)) for k in range(4)],
                          dtype=np.uint64)
        np.testing.assert_array_equal(got, expect)

    @pytest.mark.parametrize("imm", [0, 8, -8, 4096])
    def test_offset_targets_wrap_like_scalar(self, imm):
        from repro.isa.registers import wrap64

        base = OPERANDS
        got = offset_targets(base, imm)
        expect = np.array([wrap64(int(b) + imm) for b in base.tolist()],
                          dtype=np.uint64)
        np.testing.assert_array_equal(got, expect)


class TestGatherWords:
    def test_in_bounds_gather(self):
        words = np.arange(100, dtype=np.uint64)
        targets = np.array([0, 8, 16, 792], dtype=np.uint64)
        values, ok = gather_words(words, targets)
        assert ok.all()
        np.testing.assert_array_equal(values,
                                      np.array([0, 1, 2, 99], dtype=np.uint64))

    def test_out_of_bounds_flagged_and_zero(self):
        words = np.arange(4, dtype=np.uint64)
        targets = np.array([0, 32, 8], dtype=np.uint64)   # word 4 is OOB
        values, ok = gather_words(words, targets)
        np.testing.assert_array_equal(ok, [True, False, True])
        np.testing.assert_array_equal(values,
                                      np.array([0, 0, 1], dtype=np.uint64))

    def test_all_out_of_bounds(self):
        words = np.arange(2, dtype=np.uint64)
        targets = np.array([1 << 40, MASK64 & ~np.uint64(7)], dtype=np.uint64)
        values, ok = gather_words(words, targets)
        assert not ok.any()
        assert (values == 0).all()


class TestExpandGroupSlots:
    def test_spu_one_is_identity(self):
        slots = np.array([1.0, 2.0, 3.0])
        assert expand_group_slots(slots, 3, 1) is slots

    @pytest.mark.parametrize("count,spu", [(7, 4), (8, 4), (1, 4), (5, 2)])
    def test_matches_scalar_grouping(self, count, spu):
        groups = -(-count // spu)
        group_slots = np.arange(groups, dtype=np.float64) * 10.0
        got = expand_group_slots(group_slots, count, spu)
        expect = np.array([group_slots[i // spu] for i in range(count)])
        np.testing.assert_array_equal(got, expect)


class TestLaneEngineStats:
    def test_as_dict_round_trips_all_fields(self):
        stats = LaneEngineStats(batched_rounds=1, scalar_rounds=2,
                                batched_ops=3, guard_scalar_ops=4,
                                plan_misses=5)
        assert stats.as_dict() == {
            "batched_rounds": 1, "scalar_rounds": 2, "batched_ops": 3,
            "guard_scalar_ops": 4, "plan_misses": 5,
        }
