"""Unit tests for the TLB hierarchy and page-table walkers."""

import pytest

from repro.memory.dram import DramModel
from repro.memory.tlb import PAGE_BYTES, TlbHierarchy


def make_tlb(**kwargs):
    return TlbHierarchy(DramModel(), **kwargs)


class TestTranslation:
    def test_dtlb_hit_is_free(self):
        tlb = make_tlb()
        tlb.translate(0x1000, 0.0)          # fill
        assert tlb.translate(0x1000, 10.0) == 10.0

    def test_same_page_different_offset_hits(self):
        tlb = make_tlb()
        tlb.translate(0x1000, 0.0)
        assert tlb.translate(0x1FF8, 5.0) == 5.0

    def test_first_access_walks(self):
        tlb = make_tlb()
        done = tlb.translate(0x1000, 0.0)
        assert done > 0.0
        assert tlb.walks == 1

    def test_stlb_refill_cheaper_than_walk(self):
        tlb = make_tlb(dtlb_entries=1)
        tlb.translate(0 * PAGE_BYTES, 0.0)
        tlb.translate(1 * PAGE_BYTES, 0.0)   # evicts page 0 from D-TLB
        t = tlb.translate(0 * PAGE_BYTES, 1000.0)
        assert t == pytest.approx(1000.0 + TlbHierarchy.STLB_HIT_CYCLES)
        assert tlb.stlb_refills == 1

    def test_walker_contention_serialises(self):
        tlb = make_tlb(walkers=1)
        t1 = tlb.translate(0 * PAGE_BYTES, 0.0)
        t2 = tlb.translate(100 * PAGE_BYTES, 0.0)
        assert t2 > t1

    def test_more_walkers_overlap_walks(self):
        serial = make_tlb(walkers=1)
        a = serial.translate(0 * PAGE_BYTES, 0.0)
        b = serial.translate(100 * PAGE_BYTES, 0.0)
        serial_done = max(a, b)

        parallel = make_tlb(walkers=4)
        a = parallel.translate(0 * PAGE_BYTES, 0.0)
        b = parallel.translate(100 * PAGE_BYTES, 0.0)
        parallel_done = max(a, b)
        assert parallel_done < serial_done

    def test_dtlb_capacity_eviction(self):
        tlb = make_tlb(dtlb_entries=2)
        for page in range(3):
            tlb.translate(page * PAGE_BYTES, 0.0)
        misses_before = tlb.dtlb_misses
        tlb.translate(0 * PAGE_BYTES, 0.0)    # page 0 was evicted
        assert tlb.dtlb_misses == misses_before + 1

    def test_lru_keeps_hot_page(self):
        tlb = make_tlb(dtlb_entries=2)
        tlb.translate(0 * PAGE_BYTES, 0.0)
        tlb.translate(1 * PAGE_BYTES, 0.0)
        tlb.translate(0 * PAGE_BYTES, 0.0)    # touch page 0
        tlb.translate(2 * PAGE_BYTES, 0.0)    # evicts page 1
        hits_before = tlb.dtlb_hits
        tlb.translate(0 * PAGE_BYTES, 0.0)
        assert tlb.dtlb_hits == hits_before + 1

    def test_walks_share_dram_bandwidth(self):
        dram = DramModel()
        tlb = TlbHierarchy(dram, walkers=4)
        tlb.translate(0, 0.0)
        assert dram.accesses == 1
