"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cores.base import CoreConfig
from repro.cores.inorder import InOrderCore
from repro.cores.ooo import OutOfOrderCore
from repro.isa.program import ProgramBuilder
from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy
from repro.memory.main_memory import MainMemory
from repro.svr.config import SVRConfig
from repro.svr.unit import ScalarVectorUnit


def make_memory(capacity: int = 1 << 22) -> MainMemory:
    return MainMemory(capacity_bytes=capacity)


def make_inorder(program, memory, *, svr: SVRConfig | None = None,
                 mem_cfg: MemoryConfig | None = None,
                 core_cfg: CoreConfig | None = None):
    """Wire an in-order core (optionally with SVR) over fresh caches."""
    hierarchy = MemoryHierarchy(
        memory, mem_cfg or MemoryConfig(stride_prefetcher=False))
    unit = ScalarVectorUnit(svr) if svr is not None else None
    core = InOrderCore(program, memory, hierarchy, core_cfg, svr=unit)
    return core, hierarchy, unit


def make_ooo(program, memory, *, mem_cfg: MemoryConfig | None = None,
             core_cfg: CoreConfig | None = None):
    hierarchy = MemoryHierarchy(
        memory, mem_cfg or MemoryConfig(stride_prefetcher=False))
    core = OutOfOrderCore(program, memory, hierarchy, core_cfg)
    return core, hierarchy


def gather_program(array_base: int, index_base: int, count: int):
    """The canonical SVR target: striding index load + indirect gather.

    for i in 0..count: sum += data[idx[i]]   (data is 64 B-striped)
    """
    b = ProgramBuilder("gather")
    b.li("a0", index_base)
    b.li("a1", array_base)
    b.li("a2", count)
    b.li("t5", 0)
    b.li("t0", 0)
    b.label("loop")
    b.slli("t1", "t0", 3)
    b.add("t1", "a0", "t1")
    b.ld("t2", "t1", 0)          # idx[i]        (striding)
    b.slli("t3", "t2", 6)
    b.add("t3", "a1", "t3")
    b.ld("t4", "t3", 0)          # data[idx[i]]  (indirect)
    b.add("t5", "t5", "t4")
    b.addi("t0", "t0", 1)
    b.cmp_lt("t6", "t0", "a2")
    b.bnez("t6", "loop")
    b.halt()
    return b.build()


def build_gather_workload(count: int = 256, table: int = 4096, seed: int = 9):
    """Memory + program for the gather kernel; returns (program, memory)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    memory = make_memory()
    indices = rng.integers(0, table, size=count, dtype=np.int64)
    index_base = memory.alloc_array(indices, name="idx")
    array_base = memory.alloc(table << 6, name="data")
    for i in range(table):
        memory.write_word(array_base + (i << 6), i + 1)
    program = gather_program(array_base, index_base, count)
    return program, memory


@pytest.fixture
def gather():
    return build_gather_workload()
