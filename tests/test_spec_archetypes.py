"""Per-archetype timing sanity for the SPEC surrogates (Fig 14 at unit
scale): SVR must stay within a few percent of the baseline on every
archetype, and the archetypes must exercise distinct execution profiles."""

import pytest

from repro.harness.runner import run

# One representative per archetype.
ARCHETYPES = {
    "stream": "bwaves",
    "copy": "lbm",
    "stencil": "roms",
    "compute": "namd",
    "cached": "gcc",
    "short": "xz",
}


class TestOverheadPerArchetype:
    @pytest.mark.parametrize("archetype,name", sorted(ARCHETYPES.items()))
    def test_svr_overhead_bounded(self, archetype, name):
        base = run(name, "inorder", scale="tiny")
        svr = run(name, "svr16", scale="tiny")
        ratio = svr.ipc / base.ipc
        assert ratio > 0.85, (archetype, ratio)

    def test_cached_archetype_never_triggers(self):
        """Computed indices leave nothing to piggyback on."""
        result = run("gcc", "svr16", scale="tiny")
        assert result.svr.prm_rounds == 0

    def test_compute_archetype_is_issue_bound(self):
        result = run("namd", "inorder", scale="tiny")
        stack = result.cpi_stack()
        assert stack["mem-dram"] < 0.2 * result.cpi

    def test_stream_archetype_covered_by_stride_prefetcher(self):
        result = run("bwaves", "inorder", scale="tiny")
        assert result.hierarchy.prefetches_issued["stride"] > 0

    def test_short_archetype_stresses_loop_bounds(self):
        """Tiny trips: SVR triggers but the predictors throttle lanes."""
        result = run("xz", "svr16", scale="tiny")
        if result.svr.prm_rounds:
            lanes_per_round = result.svr.svi_lanes / result.svr.prm_rounds
            assert lanes_per_round < 16 * 6   # far below maxlength chains


class TestArchetypeDiversity:
    def test_profiles_differ(self):
        """The six archetypes must not collapse into one behaviour."""
        cpis = {a: run(n, "inorder", scale="tiny").cpi
                for a, n in ARCHETYPES.items()}
        assert max(cpis.values()) > 1.5 * min(cpis.values()), cpis

    def test_memory_intensity_ordering(self):
        """Streaming archetypes move more DRAM lines than compute ones."""
        stream = run("bwaves", "inorder", scale="tiny")
        compute = run("namd", "inorder", scale="tiny")
        assert stream.dram_lines > 2 * compute.dram_lines
