"""Table II (hardware overhead) and Table I (feature matrix) tests."""

import pytest

from repro.svr.overhead import (
    feature_matrix,
    overhead_bits,
    overhead_breakdown,
    overhead_kib,
)


class TestTable2Exact:
    """The paper's Table II numbers, bit for bit."""

    def test_total_bits_default(self):
        assert overhead_bits(16, 8) == 17738

    def test_total_kib_default(self):
        assert overhead_kib(16, 8) == pytest.approx(2.17, abs=0.01)

    def test_stride_detector_bits(self):
        assert overhead_breakdown(16, 8).stride_detector == 5536

    def test_taint_tracker_bits(self):
        assert overhead_breakdown(16, 8).taint_tracker == 416

    def test_hslr_bits(self):
        assert overhead_breakdown(16, 8).hslr == 64

    def test_srf_bits(self):
        assert overhead_breakdown(16, 8).srf == 8192

    def test_lc_bits(self):
        assert overhead_breakdown(16, 8).lc == 186

    def test_lbd_bits(self):
        assert overhead_breakdown(16, 8).lbd == 2160

    def test_scoreboard_bits(self):
        assert overhead_breakdown(16, 8).scoreboard == 160

    def test_prefetch_tag_bits(self):
        assert overhead_breakdown(16, 8).l1_prefetch_tags == 1024


class TestScaling:
    def test_svr128_is_about_9_kib(self):
        """Abstract: 'Increasing the overhead to 9 KiB ... 128 length'."""
        assert 8.0 < overhead_kib(128, 8) < 10.0

    def test_srf_grows_linearly_with_n(self):
        assert (overhead_breakdown(32, 8).srf
                == 2 * overhead_breakdown(16, 8).srf)

    def test_overhead_monotone_in_n(self):
        values = [overhead_bits(n) for n in (8, 16, 32, 64, 128)]
        assert values == sorted(values)

    def test_scoreboard_counter_width(self):
        # ceil(log2(N+1)) bits per scoreboard entry.
        assert overhead_breakdown(16, 8).scoreboard == 32 * 5
        assert overhead_breakdown(8, 8).scoreboard == 32 * 4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            overhead_bits(0, 8)
        with pytest.raises(ValueError):
            overhead_bits(16, 0)


class TestFeatureMatrix:
    def test_table1_contents(self):
        matrix = feature_matrix()
        assert matrix["Based on existing vector ISAs"] == {
            "VR": True, "DVR": True, "SVR": False}
        assert matrix["Runahead synchronous with main thread"]["SVR"]
        assert not matrix["Stalls the main thread"]["SVR"]
        assert matrix["Needs a discovery pass"]["DVR"]

    def test_all_rows_cover_three_techniques(self):
        for row in feature_matrix().values():
            assert set(row) == {"VR", "DVR", "SVR"}

    def test_seven_rows(self):
        assert len(feature_matrix()) == 7
