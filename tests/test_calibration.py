"""Calibration microbenchmarks: the model's primitives measure correctly."""

import pytest

from repro.harness.calibration import (
    calibration_report,
    measure_bandwidth,
    measure_dram_latency,
    measure_issue_width,
    measure_l1_latency,
    measure_l2_latency,
)
from repro.memory.hierarchy import MemoryConfig


class TestLatencies:
    def test_l1_chase_measures_configured_latency(self):
        """Steady-state L1 pointer chase = the configured 2 cycles."""
        assert measure_l1_latency(hops=1000) == pytest.approx(2.0, abs=0.3)

    def test_l2_chase_near_configured(self):
        """L1-miss/L2-hit path: ~14 cycles plus L1-conflict noise."""
        latency = measure_l2_latency(hops=1500)
        assert 13.0 < latency < 30.0

    def test_dram_chase_near_configured(self):
        """Full miss path: 90-cycle DRAM + cache probe overheads."""
        latency = measure_dram_latency(hops=800)
        assert 95.0 < latency < 135.0

    def test_latency_hierarchy_strictly_ordered(self):
        l1 = measure_l1_latency(hops=500)
        l2 = measure_l2_latency(hops=800)
        dram = measure_dram_latency(hops=500)
        assert l1 < l2 < dram

    def test_dram_latency_tracks_configuration(self):
        slow = MemoryConfig(stride_prefetcher=False, dram_latency_ns=90.0)
        fast = MemoryConfig(stride_prefetcher=False, dram_latency_ns=45.0)
        assert (measure_dram_latency(hops=400, mem_cfg=slow)
                > measure_dram_latency(hops=400, mem_cfg=fast) + 60)


class TestBandwidth:
    def test_inorder_core_cannot_saturate_the_channel(self):
        """The paper's premise, measured: even pure streaming leaves most
        of the 50 GiB/s unused on the little core."""
        achieved = measure_bandwidth()
        assert achieved < 0.5 * 50.0
        assert achieved > 2.0     # but it is not broken either

    def test_bandwidth_scales_with_mshrs(self):
        few = measure_bandwidth(MemoryConfig(stride_prefetcher=False,
                                             l1_mshrs=2))
        many = measure_bandwidth(MemoryConfig(stride_prefetcher=False,
                                              l1_mshrs=16))
        assert many > few

    def test_narrow_channel_caps_throughput(self):
        narrow = measure_bandwidth(MemoryConfig(stride_prefetcher=False,
                                                dram_bandwidth_gbps=4.0))
        assert narrow < 4.5


class TestIssueWidth:
    def test_independent_alu_throughput(self):
        """Near the 3-wide limit minus loop-carried overhead."""
        width = measure_issue_width()
        assert 2.0 < width <= 3.0


class TestReport:
    def test_report_structure(self):
        report = calibration_report()
        assert set(report) == {
            "l1_latency_cycles", "l1_configured",
            "l2_latency_cycles", "l2_configured",
            "dram_latency_cycles", "dram_configured",
            "bandwidth_gibps", "bandwidth_configured",
            "issue_width",
        }
        assert report["l1_latency_cycles"] == pytest.approx(
            report["l1_configured"], abs=0.5)
