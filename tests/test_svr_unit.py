"""Integration tests for the Scalar Vector Unit on the in-order core.

These exercise the mechanisms of Section IV end to end on small kernels:
triggering, dependent-chain prefetching, waiting mode, timeout, control-flow
masking, multi-chain handling, the accuracy gate and the ablation knobs.
"""

import numpy as np
import pytest

from repro.cores.functional import FunctionalCore
from repro.isa.program import ProgramBuilder
from repro.svr.config import LoopBoundPolicy, RecyclingPolicy, SVRConfig
from repro.svr.overhead import overhead_kib

from conftest import build_gather_workload, make_inorder, make_memory


def run_gather(svr=None, count=256, steps=2600):
    program, memory = build_gather_workload(count=count)
    core, hierarchy, unit = make_inorder(program, memory, svr=svr)
    stats = core.run(steps)
    return core, hierarchy, unit, stats


class TestTriggering:
    def test_prm_triggers_on_striding_load(self):
        _, _, unit, _ = run_gather(SVRConfig())
        assert unit.stats.prm_rounds > 0

    def test_svr_issues_prefetches(self):
        _, hierarchy, _, _ = run_gather(SVRConfig())
        assert hierarchy.stats.prefetches_issued["svr"] > 0

    def test_prefetches_are_useful(self):
        _, hierarchy, _, _ = run_gather(SVRConfig())
        stats = hierarchy.stats
        assert stats.prefetch_useful["svr"] > 10 * stats.prefetch_useless["svr"]

    def test_indirect_lanes_prefetched(self):
        """Both the striding index loads and the dependent gathers vectorize."""
        _, _, unit, _ = run_gather(SVRConfig())
        # Dependent chain: slli+add+ld per lane -> load lanes exceed one
        # stride load's worth per round.
        assert unit.stats.svi_load_lanes > unit.stats.prm_rounds * 16

    def test_speedup_over_plain_inorder(self):
        _, _, _, plain = run_gather(None)
        _, _, _, svr = run_gather(SVRConfig())
        assert svr.cycles < plain.cycles / 1.5

    def test_no_trigger_without_stride(self):
        """Pointer-chasing (non-striding) loads never enter PRM."""
        memory = make_memory()
        cells = [memory.alloc(64) for _ in range(64)]
        order = np.random.default_rng(3).permutation(64)
        for i in range(63):
            memory.write_word(cells[order[i]], cells[order[i + 1]])
        b = ProgramBuilder()
        b.li("t0", cells[order[0]])
        b.li("t1", 60)
        b.label("loop")
        b.ld("t0", "t0", 0)
        b.addi("t1", "t1", -1)
        b.bnez("t1", "loop")
        b.halt()
        core, _, unit = make_inorder(b.build(), memory, svr=SVRConfig())
        core.run(1000)
        assert unit.stats.prm_rounds == 0


class TestWaitingMode:
    def test_rounds_spaced_by_vector_length(self):
        _, _, unit, stats = run_gather(SVRConfig(vector_length=16))
        iterations = stats.loads // 2          # 2 loads per iteration
        expected_rounds = iterations / 17      # one round per N+1 iterations
        assert unit.stats.prm_rounds <= expected_rounds * 2.0

    def test_disabling_waiting_mode_explodes_work(self):
        _, _, on, _ = run_gather(SVRConfig(waiting_mode=True))
        _, _, off, _ = run_gather(SVRConfig(waiting_mode=False))
        assert off.stats.prm_rounds > 4 * on.stats.prm_rounds
        assert off.stats.svi_lanes > 4 * on.stats.svi_lanes

    def test_disabling_waiting_mode_hurts_performance(self):
        _, _, _, on = run_gather(SVRConfig(waiting_mode=True))
        _, _, _, off = run_gather(SVRConfig(waiting_mode=False))
        assert off.cycles > on.cycles


class TestTermination:
    def test_hslr_termination_dominates_steady_state(self):
        _, _, unit, _ = run_gather(SVRConfig())
        terms = unit.stats.terminations
        assert terms["hslr"] > 0

    def test_timeout_on_long_bodies(self):
        """A loop body longer than the 256-instruction timeout."""
        memory = make_memory()
        data = memory.alloc_array(list(range(512)), name="A")
        b = ProgramBuilder()
        b.li("a0", data)
        b.li("a1", 400)
        b.li("t0", 0)
        b.label("loop")
        b.slli("t1", "t0", 3)
        b.add("t1", "a0", "t1")
        b.ld("t2", "t1", 0)              # striding load
        b.add("t3", "t2", "t2")          # tainted dependent
        for _ in range(140):             # long filler body
            b.addi("t4", "t4", 1)
            b.xori("t4", "t4", 3)
        b.addi("t0", "t0", 1)
        b.cmp_lt("t5", "t0", "a1")
        b.bnez("t5", "loop")
        b.halt()
        core, _, unit = make_inorder(b.build(), memory, svr=SVRConfig())
        core.run(20_000)
        assert unit.stats.terminations["timeout"] > 0

    def test_lil_trains_after_rounds(self):
        _, _, unit, _ = run_gather(SVRConfig())
        entries = [e for e in unit.detector.entries() if e.lil_confidence > 0]
        assert entries, "LIL should gain confidence in a steady loop"

    def test_taint_cleared_after_termination(self):
        _, _, unit, _ = run_gather(SVRConfig())
        if not unit.in_prm:
            assert unit.taint.mapped_registers() == []


class TestTransientSafety:
    def test_transient_stores_do_not_corrupt_memory(self):
        """Histogram kernel under SVR must produce the exact same memory
        image as pure functional execution."""
        def build(seed=11):
            memory = make_memory()
            rng = np.random.default_rng(seed)
            keys = rng.integers(0, 512, size=256, dtype=np.int64)
            key_base = memory.alloc_array(keys, name="keys")
            hist = memory.alloc_zeros(512, name="hist")
            b = ProgramBuilder()
            b.li("a0", key_base)
            b.li("a1", hist)
            b.li("a2", 256)
            b.li("t0", 0)
            b.label("loop")
            b.slli("t1", "t0", 3)
            b.add("t1", "a0", "t1")
            b.ld("t2", "t1", 0)
            b.slli("t3", "t2", 3)
            b.add("t3", "a1", "t3")
            b.ld("t4", "t3", 0)
            b.addi("t4", "t4", 1)
            b.st("t4", "t3", 0)          # tainted store
            b.addi("t0", "t0", 1)
            b.cmp_lt("t5", "t0", "a2")
            b.bnez("t5", "loop")
            b.halt()
            return b.build(), memory, hist

        program, memory, hist = build()
        fc = FunctionalCore(program, memory)
        fc.run()
        reference = memory.read_array(hist, 512).copy()

        program2, memory2, hist2 = build()
        core, _, unit = make_inorder(program2, memory2, svr=SVRConfig())
        core.run(1_000_000)
        assert core.halted
        assert unit.stats.svi_lanes > 0
        np.testing.assert_array_equal(memory2.read_array(hist2, 512),
                                      reference)

    def test_architectural_results_identical_with_svr(self, gather):
        program, memory = gather
        core, _, _ = make_inorder(program, memory, svr=SVRConfig())
        core.run(1_000_000)
        svr_sum = core.regs.read(25)       # t5 accumulator

        program2, memory2 = build_gather_workload()
        fc = FunctionalCore(program2, memory2)
        fc.run()
        assert svr_sum == fc.regs.read(25)


class TestControlFlow:
    def build_branchy_gather(self, count=512):
        """Gather where odd values skip the indirect load (divergence)."""
        memory = make_memory()
        rng = np.random.default_rng(17)
        idx = rng.integers(0, 4096, size=count, dtype=np.int64)
        idx_base = memory.alloc_array(idx, name="idx")
        data = memory.alloc(4096 << 6, name="data")
        b = ProgramBuilder()
        b.li("a0", idx_base)
        b.li("a1", data)
        b.li("a2", count)
        b.li("t0", 0)
        b.label("loop")
        b.slli("t1", "t0", 3)
        b.add("t1", "a0", "t1")
        b.ld("t2", "t1", 0)              # striding load
        b.andi("t3", "t2", 1)            # tainted predicate
        b.bnez("t3", "skip")             # divergent branch
        b.slli("t4", "t2", 6)
        b.add("t4", "a1", "t4")
        b.ld("t5", "t4", 0)              # indirect load (even lanes only)
        b.label("skip")
        b.addi("t0", "t0", 1)
        b.cmp_lt("t6", "t0", "a2")
        b.bnez("t6", "loop")
        b.halt()
        return b.build(), memory

    def test_divergent_lanes_masked(self):
        program, memory = self.build_branchy_gather()
        core, _, unit = make_inorder(program, memory, svr=SVRConfig())
        core.run(8_000)
        assert unit.stats.masked_lanes > 0

    def test_roughly_half_the_lanes_survive(self):
        program, memory = self.build_branchy_gather()
        core, hierarchy, unit = make_inorder(program, memory,
                                             svr=SVRConfig(vector_length=16))
        core.run(8_000)
        # Odd/even predicate: about half of each round's 16 lanes should be
        # masked at the divergent branch.
        per_round = unit.stats.masked_lanes / unit.stats.prm_rounds
        assert 16 * 0.25 < per_round < 16 * 0.8


class TestMultipleChains:
    def test_nested_loops_settle_on_inner_chain(self):
        """A PR-shaped kernel: the steady-state HSLR must be the *inner*
        neighbor load, not the outer offset walk (Section IV-A6 bias)."""
        from repro.workloads.gap import build_pr
        from repro.workloads.graphs import uniform_random_graph

        workload = build_pr(uniform_random_graph(256, 8, seed=5), passes=4)
        core, _, unit = make_inorder(workload.program, workload.memory,
                                     svr=SVRConfig())
        core.run(20_000)
        # The inner neighbor load is the first LD after the 'inner' label.
        inner_pc = workload.program.pc_of("inner") + 2
        assert unit.hslr_pc == inner_pc
        assert unit.stats.prm_rounds > 0

    def test_independent_loops_retarget(self):
        """Fig 9 bottom: a second phase's striding load seen twice while the
        HSLR still points at the finished first loop forces a retarget."""
        memory = make_memory()
        rng = np.random.default_rng(29)
        idx_a = memory.alloc_array(
            rng.integers(0, 2048, 512, dtype=np.int64), name="ia")
        idx_b = memory.alloc_array(
            rng.integers(0, 2048, 512, dtype=np.int64), name="ib")
        data = memory.alloc(2048 << 6, name="data")

        def gather_loop(b, idx_base_reg, tag):
            b.li("t0", 0)
            b.label(f"loop_{tag}")
            b.slli("t1", "t0", 3)
            b.add("t1", idx_base_reg, "t1")
            b.ld("t2", "t1", 0)
            b.slli("t3", "t2", 6)
            b.add("t3", "a2", "t3")
            b.ld("t4", "t3", 0)
            b.add("t5", "t5", "t4")
            b.addi("t0", "t0", 1)
            b.cmp_lt("t6", "t0", "a3")
            b.bnez("t6", f"loop_{tag}")

        b = ProgramBuilder()
        b.li("a0", idx_a)
        b.li("a1", idx_b)
        b.li("a2", data)
        b.li("a3", 512)
        gather_loop(b, "a0", "first")
        gather_loop(b, "a1", "second")
        b.halt()
        core, _, unit = make_inorder(b.build(), memory, svr=SVRConfig())
        core.run(30_000)
        assert unit.stats.retargets > 0
        # After the retarget, the HSLR sits on the second loop's index load.
        second_pc = b.build().pc_of("loop_second") + 2
        assert unit.hslr_pc == second_pc

    def test_unrolled_parallel_chains_both_vectorize(self):
        """Two independent gathers in one loop body (Fig 9 middle)."""
        memory = make_memory()
        rng = np.random.default_rng(23)
        idx_a = memory.alloc_array(
            rng.integers(0, 2048, 512, dtype=np.int64), name="ia")
        idx_b = memory.alloc_array(
            rng.integers(0, 2048, 512, dtype=np.int64), name="ib")
        data = memory.alloc(2048 << 6, name="data")
        b = ProgramBuilder()
        b.li("a0", idx_a)
        b.li("a1", idx_b)
        b.li("a2", data)
        b.li("a3", 512)
        b.li("t0", 0)
        b.label("loop")
        b.slli("t1", "t0", 3)
        b.add("t2", "a0", "t1")
        b.ld("t3", "t2", 0)              # chain A head
        b.slli("t4", "t3", 6)
        b.add("t4", "a2", "t4")
        b.ld("t5", "t4", 0)              # chain A indirect
        b.add("t6", "a1", "t1")
        b.ld("t7", "t6", 0)              # chain B head
        b.slli("t8", "t7", 6)
        b.add("t8", "a2", "t8")
        b.ld("t9", "t8", 0)              # chain B indirect
        b.addi("t0", "t0", 1)
        b.cmp_lt("t10", "t0", "a3")
        b.bnez("t10", "loop")
        b.halt()
        core, _, unit = make_inorder(b.build(), memory, svr=SVRConfig())
        core.run(10_000)
        assert unit.stats.unrolled_chains > 0


class TestAccuracyGate:
    # Small caches so useless prefetched lines actually get evicted (the
    # accuracy event of Section IV-A7) within a short test run.
    SMALL_CACHES = dict(l1_size=8 << 10, l2_size=32 << 10)

    def build_short_loop_kernel(self, trip=6, rows=4096):
        """Tiny inner trips with jumps: maxlength overfetches badly."""
        memory = make_memory()
        total = 1 << 17                  # 1 MiB array: far beyond the L2
        data = memory.alloc_array(
            np.arange(total, dtype=np.int64), name="A")
        b = ProgramBuilder()
        b.li("a0", data)
        b.li("a1", rows)
        b.li("a2", trip)
        b.li("t9", 0)                    # row
        b.label("rows")
        b.muli("t1", "t9", 7177)         # scattered row start
        b.andi("t1", "t1", total - 64)
        b.li("t2", 0)
        b.label("inner")
        b.add("t3", "t1", "t2")
        b.slli("t3", "t3", 3)
        b.add("t3", "a0", "t3")
        b.ld("t4", "t3", 0)              # short striding runs
        b.add("t5", "t5", "t4")
        b.addi("t2", "t2", 1)
        b.cmp_lt("t6", "t2", "a2")
        b.bnez("t6", "inner")
        b.addi("t9", "t9", 1)
        b.cmp_lt("t6", "t9", "a1")
        b.bnez("t6", "rows")
        b.halt()
        return b.build(), memory

    def _run(self, cfg, steps=60_000):
        from repro.memory.hierarchy import MemoryConfig

        program, memory = self.build_short_loop_kernel()
        mem_cfg = MemoryConfig(stride_prefetcher=False, **self.SMALL_CACHES)
        core, hierarchy, unit = make_inorder(program, memory, svr=cfg,
                                             mem_cfg=mem_cfg)
        core.run(steps)
        return core, hierarchy, unit

    def test_maxlength_gets_banned_on_short_loops(self):
        cfg = SVRConfig(policy=LoopBoundPolicy.MAXLENGTH,
                        accuracy_warmup_events=40,
                        accuracy_reset_interval=1_000_000)
        _, _, unit = self._run(cfg)
        assert unit.monitor.bans >= 1
        assert unit.stats.rounds_blocked_by_monitor > 0

    def test_monitor_can_be_disabled(self):
        cfg = SVRConfig(policy=LoopBoundPolicy.MAXLENGTH,
                        accuracy_enabled=False)
        _, _, unit = self._run(cfg)
        assert unit.monitor.bans == 0

    def test_tournament_policy_stays_accurate(self):
        tour_cfg = SVRConfig(policy=LoopBoundPolicy.TOURNAMENT,
                             accuracy_enabled=False)
        _, tour_hier, _ = self._run(tour_cfg)
        max_cfg = SVRConfig(policy=LoopBoundPolicy.MAXLENGTH,
                            accuracy_enabled=False)
        _, max_hier, _ = self._run(max_cfg)
        assert (tour_hier.stats.accuracy("svr")
                > max_hier.stats.accuracy("svr"))


class TestAblationKnobs:
    def test_longer_vectors_prefetch_more(self):
        _, h8, _, _ = run_gather(SVRConfig(vector_length=8), count=1024,
                                 steps=8000)
        _, h64, _, _ = run_gather(SVRConfig(vector_length=64), count=1024,
                                  steps=8000)
        assert (h64.stats.prefetches_issued["svr"]
                > h8.stats.prefetches_issued["svr"])

    def test_register_copy_cost_slows_execution(self):
        _, _, _, free = run_gather(SVRConfig(register_copy_cost_cycles=0.0))
        _, _, _, costly = run_gather(
            SVRConfig(register_copy_cost_cycles=32.0))
        assert costly.cycles > free.cycles

    def test_dvr_recycling_with_tiny_srf_loses_coverage(self):
        """On a two-level chain (Camel), a 2-entry SRF with DVR's
        no-stealing policy cannot map the second indirection level, losing
        prefetch coverage; LRU recycling keeps vectorizing (Section VI-D)."""
        from repro.workloads.hpc import build_camel

        def run_with(cfg):
            workload = build_camel(elements=1024, table_nodes=1024)
            core, hierarchy, unit = make_inorder(
                workload.program, workload.memory, svr=cfg)
            core.run(12_000)
            return hierarchy, unit

        h_lru, _ = run_with(SVRConfig(srf_entries=2,
                                      recycling=RecyclingPolicy.LRU))
        h_dvr, u_dvr = run_with(SVRConfig(srf_entries=2,
                                          recycling=RecyclingPolicy.DVR))
        assert u_dvr.srf.allocation_failures > 0
        assert (h_dvr.stats.prefetches_issued["svr"]
                < 0.9 * h_lru.stats.prefetches_issued["svr"])

    def test_scalars_per_unit_barely_matters(self):
        """Fig 16: execution is memory-bound, packing lanes changes little."""
        _, _, _, one = run_gather(SVRConfig(scalars_per_unit=1))
        _, _, _, eight = run_gather(SVRConfig(scalars_per_unit=8))
        assert eight.cycles <= one.cycles
        assert eight.cycles > 0.7 * one.cycles

    def test_state_kib_matches_overhead_table(self):
        from repro.svr.unit import ScalarVectorUnit
        unit = ScalarVectorUnit(SVRConfig(vector_length=16, srf_entries=8))
        assert unit.state_kib == pytest.approx(overhead_kib(16, 8))
