"""Unit and integration tests for the stall-on-use in-order core."""

import pytest

from repro.cores.base import CoreConfig, IssueSlots, StallReason
from repro.isa.program import ProgramBuilder

from conftest import make_inorder, make_memory


class TestIssueSlots:
    def test_width_per_cycle(self):
        slots = IssueSlots(3)
        times = [slots.allocate(0.0) for _ in range(4)]
        assert times[:3] == [0.0, 0.0, 0.0]
        assert times[3] == 1.0

    def test_requests_in_future_reset_count(self):
        slots = IssueSlots(2)
        slots.allocate(0.0)
        slots.allocate(0.0)
        assert slots.allocate(5.5) == 5.5
        assert slots.allocate(5.6) == 5.6
        assert slots.allocate(5.7) == 6.0   # third in cycle 5

    def test_past_requests_pushed_forward(self):
        slots = IssueSlots(1)
        slots.allocate(10.0)
        assert slots.allocate(0.0) == 11.0

    def test_peek_does_not_reserve(self):
        slots = IssueSlots(1)
        assert slots.peek(0.0) == 0.0
        assert slots.peek(0.0) == 0.0
        slots.allocate(0.0)
        assert slots.peek(0.0) == 1.0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            IssueSlots(0)


def run_program(build_fn, max_instructions=10_000, **core_kwargs):
    memory = make_memory()
    b = ProgramBuilder()
    build_fn(b, memory)
    core, hierarchy, _ = make_inorder(b.build(), memory, **core_kwargs)
    stats = core.run(max_instructions)
    return core, hierarchy, stats


class TestExecution:
    def test_runs_to_halt(self):
        def prog(b, mem):
            b.li("t0", 5)
            b.addi("t0", "t0", 1)
            b.halt()
        core, _, stats = run_program(prog)
        assert core.halted and stats.halted
        assert stats.instructions == 3
        assert core.regs.read(20) == 6

    def test_loop_executes_correct_count(self):
        def prog(b, mem):
            b.li("t0", 0)
            b.li("t1", 10)
            b.label("loop")
            b.addi("t0", "t0", 1)
            b.cmp_lt("t2", "t0", "t1")
            b.bnez("t2", "loop")
            b.halt()
        core, _, stats = run_program(prog)
        assert core.regs.read(20) == 10

    def test_loads_and_stores_functional(self):
        def prog(b, mem):
            addr = mem.alloc_array([7])
            dst = mem.alloc_zeros(1)
            b.li("a0", addr)
            b.li("a1", dst)
            b.ld("t0", "a0", 0)
            b.addi("t0", "t0", 1)
            b.st("t0", "a1", 0)
            b.halt()
        core, _, _ = run_program(prog)
        assert core.regs.read(20) == 8

    def test_max_instructions_caps_run(self):
        def prog(b, mem):
            b.label("spin")
            b.jmp("spin")
        core, _, stats = run_program(prog, max_instructions=100)
        assert stats.instructions == 100
        assert not core.halted


class TestStallOnUse:
    def test_independent_alu_ops_pack_per_cycle(self):
        def prog(b, mem):
            for _ in range(30):
                b.addi("t0", "x0", 1)
            b.halt()
        core, _, stats = run_program(prog)
        # 3-wide: ~10 cycles for 30 independent instructions.
        assert stats.cpi < 0.6

    def test_load_use_stall_charged_to_dram(self):
        def prog(b, mem):
            addr = mem.alloc_array([1])
            b.li("a0", addr)
            b.ld("t0", "a0", 0)       # cold miss
            b.addi("t1", "t0", 1)     # immediate use -> stall
            b.halt()
        core, _, stats = run_program(prog)
        assert stats.stall_cycles[StallReason.MEM_DRAM] > 50

    def test_load_without_use_does_not_stall(self):
        def prog(b, mem):
            addr = mem.alloc_array([1])
            b.li("a0", addr)
            b.ld("t0", "a0", 0)
            for _ in range(20):
                b.addi("t1", "t1", 1)  # independent work
            b.halt()
        core, _, stats = run_program(prog)
        assert stats.stall_cycles[StallReason.MEM_DRAM] == 0

    def test_dependent_misses_serialise(self):
        """A pointer-chase pays full DRAM latency per hop."""
        def prog(b, mem):
            hops = 4
            # Chain: each cell holds the address of the next (cold lines).
            addrs = [mem.alloc(64) for _ in range(hops)]
            for i in range(hops - 1):
                mem.write_word(addrs[i], addrs[i + 1])
            b.li("t0", addrs[0])
            for _ in range(hops - 1):
                b.ld("t0", "t0", 0)
            b.halt()
        core, hier, stats = run_program(prog)
        assert stats.cycles > 3 * hier.dram.latency_cycles

    def test_independent_misses_overlap(self):
        def dependent(b, mem):
            addrs = [mem.alloc(64) for _ in range(4)]
            for i in range(3):
                mem.write_word(addrs[i], addrs[i + 1])
            b.li("t0", addrs[0])
            for _ in range(3):
                b.ld("t0", "t0", 0)
            b.ld("t9", "t0", 0)   # final use forces completion
            b.addi("t9", "t9", 1)
            b.halt()

        def independent(b, mem):
            addrs = [mem.alloc(64) for _ in range(4)]
            for i, addr in enumerate(addrs):
                b.li("a0", addr)
                b.ld(f"t{i}", "a0", 0)
            b.addi("t8", "t0", 1)   # use them all at the end
            b.addi("t8", "t1", 1)
            b.addi("t8", "t2", 1)
            b.addi("t8", "t3", 1)
            b.halt()

        _, _, dep_stats = run_program(dependent)
        _, _, ind_stats = run_program(independent)
        assert ind_stats.cycles < dep_stats.cycles

    def test_scoreboard_bounds_inflight(self):
        cfg = CoreConfig(scoreboard_entries=2)

        def prog(b, mem):
            base = mem.alloc(64 * 64)
            b.li("a0", base)
            for i in range(8):
                b.ld(f"t{i % 8}", "a0", i * 4096)  # independent cold misses
            b.halt()
        core, _, small = run_program(prog, core_cfg=cfg)
        core, _, big = run_program(prog, core_cfg=CoreConfig())
        assert small.cycles > big.cycles


class TestBranches:
    def test_mispredict_penalty_applied(self):
        def prog(b, mem):
            # A data-dependent unpredictable-ish branch executed once.
            b.li("t0", 1)
            b.bnez("t0", "skip")
            b.nop()
            b.label("skip")
            b.halt()
        core, _, stats = run_program(prog)
        assert stats.branches == 1

    def test_predictable_loop_fast(self):
        def prog(b, mem):
            b.li("t0", 0)
            b.li("t1", 500)
            b.label("loop")
            b.addi("t0", "t0", 1)
            b.cmp_lt("t2", "t0", "t1")
            b.bnez("t2", "loop")
            b.halt()
        core, _, stats = run_program(prog)
        # Loop branch almost always predicted: CPI near issue-bound.
        assert stats.cpi < 1.5
        # The hybrid predictor nails the backedge after warmup.
        assert stats.mispredicts <= 15


class TestMeasurementWindow:
    def test_reset_stats_starts_fresh_window(self, gather):
        program, memory = gather
        core, hierarchy, _ = make_inorder(program, memory)
        core.run(500)
        first_cycles = core.stats.cycles
        core.reset_stats()
        assert core.stats.instructions == 0
        core.run(500)
        assert core.stats.instructions == 500
        assert core.stats.cycles > 0
        assert core.stats.start_cycle >= first_cycles - 1

    def test_gather_is_memory_bound(self, gather):
        program, memory = gather
        core, hierarchy, _ = make_inorder(program, memory)
        stats = core.run(2500)
        stack = stats.cpi_stack()
        assert stack["mem-dram"] > stack["base"]
        assert stats.cpi > 3.0
