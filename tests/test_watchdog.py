"""Watchdog fence tests: runaway simulations die with context, healthy
runs never notice the fence."""

from dataclasses import replace

import pytest

from repro.cores.base import CoreConfig, SimulationError
from repro.harness.runner import run, technique

from conftest import make_inorder, make_ooo


class TestFenceTrips:
    def test_inorder_cycle_fence(self, gather):
        program, memory = gather
        core, _, _ = make_inorder(
            program, memory,
            core_cfg=CoreConfig(watchdog_max_cycles=50.0))
        with pytest.raises(SimulationError) as excinfo:
            core.run(10_000)
        exc = excinfo.value
        assert "watchdog fence" in str(exc)
        assert exc.cycle is not None and exc.cycle > 50.0
        assert exc.pc is not None
        assert exc.instructions is not None

    def test_ooo_cycle_fence(self, gather):
        program, memory = gather
        core, _ = make_ooo(
            program, memory,
            core_cfg=CoreConfig(watchdog_max_cycles=50.0))
        with pytest.raises(SimulationError, match="ooo core"):
            core.run(10_000)

    def test_instruction_fence(self, gather):
        program, memory = gather
        core, _, _ = make_inorder(
            program, memory,
            core_cfg=CoreConfig(watchdog_max_instructions=25))
        with pytest.raises(SimulationError, match="instruction"):
            core.run(10_000)
        assert core.lifetime_instructions > 25

    def test_instruction_fence_spans_run_calls(self, gather):
        """The fence counts lifetime instructions, so a warmup+measure
        split cannot reset it."""
        program, memory = gather
        core, _, _ = make_inorder(
            program, memory,
            core_cfg=CoreConfig(watchdog_max_instructions=40))
        core.run(30)    # under the fence
        with pytest.raises(SimulationError):
            core.run(10_000)


class TestRunnerIntegration:
    def test_run_fills_workload_and_technique_context(self):
        tech = technique("inorder")
        tech = replace(tech, core_config=replace(
            tech.core_config, watchdog_max_cycles=50.0))
        with pytest.raises(SimulationError) as excinfo:
            run("Camel", tech, scale="tiny")
        exc = excinfo.value
        assert exc.workload == "Camel"
        assert exc.technique == "inorder"
        # Context rides along in the rendered message.
        text = str(exc)
        assert "workload=Camel" in text and "cycle=" in text

    def test_default_fence_never_trips_healthy_runs(self):
        for tech in ("inorder", "ooo", "svr16"):
            result = run("Camel", technique(tech), scale="tiny")
            assert result.core.instructions > 0

    def test_context_dict(self):
        exc = SimulationError("boom", cycle=5.0, pc=3, workload="w",
                              technique="t")
        ctx = exc.context()
        assert ctx == {"cycle": 5.0, "pc": 3, "workload": "w",
                       "technique": "t"}
