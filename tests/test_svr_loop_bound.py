"""Unit tests for loop-bound prediction: LC, LBD, CV scavenging, tournament."""

from repro.svr.config import LoopBoundPolicy
from repro.svr.loop_bound import LoopBoundUnit
from repro.svr.stride_detector import StrideDetector


def train_loop(lbu, hslr_pc=10, comp_pc=20, branch_pc=22, iters=5,
               bound=100, step=1, dest=6, reg_a=3, reg_b=4):
    """Simulate `i` counting to `bound`: cmp (i, bound) then backward branch."""
    for k in range(iters):
        i_val = (k + 1) * step
        lbu.observe_compare(comp_pc, i_val, bound, reg_a, reg_b, dest)
        lbu.train_on_branch(branch_pc, hslr_pc - 2, taken=True,
                            source_reg=dest, hslr_pc=hslr_pc)


class TestLastCompare:
    def test_compare_sets_lc(self):
        lbu = LoopBoundUnit()
        lbu.observe_compare(20, 5, 100, 3, 4, 6)
        assert lbu.lc.valid and lbu.lc.pc == 20
        assert (lbu.lc.val_a, lbu.lc.val_b) == (5, 100)

    def test_other_write_to_dest_resets_lc(self):
        lbu = LoopBoundUnit()
        lbu.observe_compare(20, 5, 100, 3, 4, 6)
        lbu.observe_write(21, 6, is_compare=False)
        assert not lbu.lc.valid

    def test_unrelated_write_keeps_lc(self):
        lbu = LoopBoundUnit()
        lbu.observe_compare(20, 5, 100, 3, 4, 6)
        lbu.observe_write(21, 7, is_compare=False)
        assert lbu.lc.valid


class TestLbdTraining:
    def test_learns_increment_and_changing_operand(self):
        lbu = LoopBoundUnit()
        train_loop(lbu, iters=4)
        entry = lbu.peek(10)
        assert entry is not None
        assert entry.changing == "a"
        assert entry.increment == 1
        assert entry.fresh

    def test_learns_non_unit_increment(self):
        lbu = LoopBoundUnit()
        train_loop(lbu, iters=4, step=4)
        assert lbu.peek(10).increment == 4

    def test_forward_branch_ignored(self):
        lbu = LoopBoundUnit()
        lbu.observe_compare(20, 1, 100, 3, 4, 6)
        lbu.train_on_branch(22, 30, taken=True, source_reg=6, hslr_pc=10)
        assert lbu.peek(10) is None or lbu.peek(10).comp_pc == -1

    def test_not_taken_branch_ignored(self):
        lbu = LoopBoundUnit()
        lbu.observe_compare(20, 1, 100, 3, 4, 6)
        lbu.train_on_branch(22, 5, taken=False, source_reg=6, hslr_pc=10)
        assert lbu.trainings == 0

    def test_wrong_source_register_ignored(self):
        lbu = LoopBoundUnit()
        lbu.observe_compare(20, 1, 100, 3, 4, 6)
        lbu.train_on_branch(22, 5, taken=True, source_reg=9, hslr_pc=10)
        assert lbu.trainings == 0

    def test_compare_replacement_needs_confidence_drain(self):
        lbu = LoopBoundUnit()
        train_loop(lbu, iters=4, comp_pc=20)
        entry = lbu.peek(10)
        assert entry.comp_pc == 20
        # A different compare now feeds the branch; needs repeated evidence.
        lbu.observe_compare(40, 1, 50, 3, 4, 6)
        lbu.train_on_branch(22, 5, taken=True, source_reg=6, hslr_pc=10)
        assert entry.comp_pc == 20   # one hit is not enough
        for _ in range(5):
            lbu.observe_compare(40, 1, 50, 3, 4, 6)
            lbu.train_on_branch(22, 5, taken=True, source_reg=6, hslr_pc=10)
        assert lbu.peek(10).comp_pc == 40


class TestPredictions:
    def test_lbd_remaining_iterations(self):
        lbu = LoopBoundUnit()
        train_loop(lbu, iters=5, bound=100)
        # After 5 iterations i=5; remaining = 100 - 5 = 95.
        assert lbu.predict_lbd(10, require_fresh=True) == 95

    def test_lbd_requires_freshness_after_reentry(self):
        lbu = LoopBoundUnit()
        train_loop(lbu, iters=5)
        lbu.on_loop_reentry(10)
        assert lbu.predict_lbd(10, require_fresh=True) is None
        assert lbu.predict_lbd(10, require_fresh=False) is not None

    def test_cv_scavenging_reads_current_registers(self):
        lbu = LoopBoundUnit()
        train_loop(lbu, iters=5, bound=100, reg_a=3, reg_b=4)
        lbu.on_loop_reentry(10)
        regs = {3: 90, 4: 100}
        assert lbu.predict_cv(10, regs.__getitem__) == 10

    def test_cv_returns_none_without_training(self):
        lbu = LoopBoundUnit()
        assert lbu.predict_cv(10, lambda r: 0) is None

    def test_negative_remaining_rejected(self):
        lbu = LoopBoundUnit()
        train_loop(lbu, iters=5, bound=100)
        regs = {3: 200, 4: 100}    # induction past the bound
        assert lbu.predict_cv(10, regs.__getitem__) is None


class TestPolicies:
    def make_stride(self, ewma=None, iteration=0):
        det = StrideDetector()
        entry = det.observe(1, 0).entry
        if ewma is not None:
            entry.ewma = ewma
            entry.ewma_trained = True
        entry.iteration = iteration
        return entry

    def test_maxlength_always_max(self):
        lbu = LoopBoundUnit()
        entry = self.make_stride()
        n = lbu.decide_length(LoopBoundPolicy.MAXLENGTH, entry,
                              lambda r: 0, 16)
        assert n == 16

    def test_ewma_untrained_optimistic(self):
        lbu = LoopBoundUnit()
        entry = self.make_stride(ewma=None)
        assert lbu.decide_length(LoopBoundPolicy.EWMA, entry,
                                 lambda r: 0, 16) == 16

    def test_ewma_remaining_formula(self):
        lbu = LoopBoundUnit()
        entry = self.make_stride(ewma=10.0, iteration=4)
        # min(EWMA - Iteration, N) = 6.
        assert lbu.decide_length(LoopBoundPolicy.EWMA, entry,
                                 lambda r: 0, 16) == 6

    def test_ewma_past_average_falls_back(self):
        lbu = LoopBoundUnit()
        entry = self.make_stride(ewma=10.0, iteration=12)
        # Negative remaining: min(EWMA, N) = 10.
        assert lbu.decide_length(LoopBoundPolicy.EWMA, entry,
                                 lambda r: 0, 16) == 10

    def test_lbd_wait_returns_zero_until_trained(self):
        lbu = LoopBoundUnit()
        entry = self.make_stride()
        assert lbu.decide_length(LoopBoundPolicy.LBD_WAIT, entry,
                                 lambda r: 0, 16) == 0

    def test_lbd_maxlength_falls_back_to_max(self):
        lbu = LoopBoundUnit()
        entry = self.make_stride()
        assert lbu.decide_length(LoopBoundPolicy.LBD_MAXLENGTH, entry,
                                 lambda r: 0, 16) == 16

    def test_lbd_cv_uses_scavenged_values(self):
        lbu = LoopBoundUnit()
        entry = self.make_stride()
        train_loop(lbu, hslr_pc=entry.pc, iters=4, bound=100)
        lbu.on_loop_reentry(entry.pc)
        regs = {3: 95, 4: 100}
        n = lbu.decide_length(LoopBoundPolicy.LBD_CV, entry,
                              regs.__getitem__, 16)
        assert n == 5

    def test_tournament_prefers_better_predictor(self):
        lbu = LoopBoundUnit()
        entry = self.make_stride(ewma=4.0)
        entry.last_ewma_pred = 4
        entry.last_lbd_pred = 12
        lbu.train_tournament(entry, actual=12)
        assert entry.tournament == 2    # moved toward LBD
        entry.last_ewma_pred = 4
        entry.last_lbd_pred = 12
        lbu.train_tournament(entry, actual=4)
        assert entry.tournament == 1    # back toward EWMA

    def test_tournament_decision_routing(self):
        lbu = LoopBoundUnit()
        entry = self.make_stride(ewma=4.0)
        train_loop(lbu, hslr_pc=entry.pc, iters=4, bound=100)
        lbu.on_loop_reentry(entry.pc)   # stale LBD -> CV scavenging path
        entry.tournament = 3            # trust LBD
        n = lbu.decide_length(LoopBoundPolicy.TOURNAMENT, entry,
                              lambda r: {3: 98, 4: 100}.get(r, 0), 16)
        assert n == 2                   # LBD+CV says 2 remaining
        entry.tournament = 0            # trust EWMA
        n = lbu.decide_length(LoopBoundPolicy.TOURNAMENT, entry,
                              lambda r: {3: 98, 4: 100}.get(r, 0), 16)
        assert n == 4
