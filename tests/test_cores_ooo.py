"""Unit and integration tests for the out-of-order core model."""


from repro.cores.base import CoreConfig
from repro.isa.program import ProgramBuilder

from conftest import build_gather_workload, make_inorder, make_memory, make_ooo


def run_ooo(build_fn, max_instructions=10_000, **core_kwargs):
    memory = make_memory()
    b = ProgramBuilder()
    build_fn(b, memory)
    core, hierarchy = make_ooo(b.build(), memory, **core_kwargs)
    stats = core.run(max_instructions)
    return core, hierarchy, stats


class TestExecution:
    def test_functional_results_match(self):
        def prog(b, mem):
            addr = mem.alloc_array([10, 20, 30])
            b.li("a0", addr)
            b.ld("t0", "a0", 0)
            b.ld("t1", "a0", 8)
            b.add("t2", "t0", "t1")
            b.halt()
        core, _, _ = run_ooo(prog)
        assert core.regs.read(22) == 30

    def test_runs_to_halt(self):
        def prog(b, mem):
            b.li("t0", 1)
            b.halt()
        core, _, stats = run_ooo(prog)
        assert core.halted and stats.instructions == 2


class TestMlp:
    def test_independent_misses_overlap(self):
        """The OoO core's raison d'etre: multiple outstanding misses."""
        def prog(b, mem):
            base = mem.alloc(8 * 4096)
            b.li("a0", base)
            for i in range(8):
                b.ld(f"t{i}", "a0", i * 4096)
            b.add("t8", "t0", "t7")
            b.halt()
        core, hier, stats = run_ooo(prog)
        # Far less than 8 serialised DRAM accesses.
        assert stats.cycles < 4 * hier.dram.latency_cycles

    def test_dependent_chain_still_serialises(self):
        def prog(b, mem):
            addrs = [mem.alloc(64) for _ in range(4)]
            for i in range(3):
                mem.write_word(addrs[i], addrs[i + 1])
            b.li("t0", addrs[0])
            for _ in range(3):
                b.ld("t0", "t0", 0)
            b.halt()
        core, hier, stats = run_ooo(prog)
        assert stats.cycles > 2.5 * hier.dram.latency_cycles

    def test_rob_bounds_lookahead(self):
        def prog(b, mem):
            base = mem.alloc(64 * 64 * 64)
            b.li("a0", base)
            for i in range(48):
                b.ld(f"t{i % 8}", "a0", i * 4096)
                b.addi(f"s{i % 4}", f"t{i % 8}", 1)   # consume each load
            b.halt()
        _, _, small = run_ooo(prog, core_cfg=CoreConfig(rob_entries=4))
        _, _, large = run_ooo(prog, core_cfg=CoreConfig(rob_entries=64,
                                                        lsq_entries=64))
        assert large.cycles < small.cycles

    def test_lsq_bounds_outstanding_memory_ops(self):
        def prog(b, mem):
            base = mem.alloc(64 * 64 * 64)
            b.li("a0", base)
            for i in range(32):
                b.ld(f"t{i % 8}", "a0", i * 4096)
            b.halt()
        _, _, small = run_ooo(prog, core_cfg=CoreConfig(lsq_entries=1))
        _, _, large = run_ooo(prog, core_cfg=CoreConfig(lsq_entries=16))
        assert large.cycles < small.cycles

    def test_beats_inorder_on_gather(self):
        program, memory = build_gather_workload()
        ooo, _ = make_ooo(program, memory)
        ooo_stats = ooo.run(2500)
        program2, memory2 = build_gather_workload()
        ino, _, _ = make_inorder(program2, memory2)
        ino_stats = ino.run(2500)
        assert ooo_stats.cpi < ino_stats.cpi / 1.5


class TestForwarding:
    def test_store_to_load_forwarding(self):
        """A load of a just-stored word should not go to memory."""
        def prog(b, mem):
            addr = mem.alloc(64)
            b.li("a0", addr)
            b.li("t0", 42)
            b.st("t0", "a0", 0)
            b.ld("t1", "a0", 0)
            b.addi("t2", "t1", 0)
            b.halt()
        core, hier, stats = run_ooo(prog)
        assert core.regs.read(21) == 42
        # The load was forwarded, so well under a DRAM round trip.
        assert stats.cycles < hier.dram.latency_cycles

    def test_dependent_load_cannot_bypass_store(self):
        def prog(b, mem):
            addr = mem.alloc(64)
            mem.write_word(addr, 7)
            b.li("a0", addr)
            b.li("t0", 99)
            b.st("t0", "a0", 0)
            b.ld("t1", "a0", 0)
            b.halt()
        core, _, _ = run_ooo(prog)
        assert core.regs.read(21) == 99     # sees the new value


class TestBranches:
    def test_loop_completes_correctly(self):
        def prog(b, mem):
            b.li("t0", 0)
            b.li("t1", 20)
            b.label("loop")
            b.addi("t0", "t0", 1)
            b.cmp_lt("t2", "t0", "t1")
            b.bnez("t2", "loop")
            b.halt()
        core, _, stats = run_ooo(prog)
        assert core.regs.read(20) == 20
        assert stats.branches == 20

    def test_reset_stats_window(self):
        def prog(b, mem):
            b.li("t0", 0)
            b.li("t1", 100000)
            b.label("loop")
            b.addi("t0", "t0", 1)
            b.cmp_lt("t2", "t0", "t1")
            b.bnez("t2", "loop")
            b.halt()
        memory = make_memory()
        b = ProgramBuilder()
        prog(b, memory)
        core, _ = make_ooo(b.build(), memory)
        core.run(100)
        core.reset_stats()
        core.run(300)
        assert core.stats.instructions == 300
