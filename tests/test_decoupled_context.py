"""Tests for the decoupled-context ablation (Section VI-D discussion)."""

from repro.svr.config import SVRConfig

from conftest import build_gather_workload, make_inorder


def run_with(cfg, steps=2600):
    program, memory = build_gather_workload()
    core, hierarchy, unit = make_inorder(program, memory, svr=cfg)
    stats = core.run(steps)
    return stats, hierarchy, unit


class TestDecoupledContext:
    def test_decoupled_never_slower_than_lockstep(self):
        lock, _, _ = run_with(SVRConfig())
        dec, _, _ = run_with(SVRConfig(decoupled_context=True))
        assert dec.cycles <= lock.cycles * 1.01

    def test_decoupling_gain_is_small(self):
        """Runahead is memory-bound: free issue slots barely help — the
        paper's case for lockstep coupling on a little core."""
        lock, _, _ = run_with(SVRConfig())
        dec, _, _ = run_with(SVRConfig(decoupled_context=True))
        assert dec.cycles > 0.75 * lock.cycles

    def test_same_prefetch_work_either_way(self):
        _, h_lock, u_lock = run_with(SVRConfig())
        _, h_dec, u_dec = run_with(SVRConfig(decoupled_context=True))
        assert u_dec.stats.prm_rounds == u_lock.stats.prm_rounds
        lock_pf = h_lock.stats.prefetches_issued["svr"]
        dec_pf = h_dec.stats.prefetches_issued["svr"]
        assert abs(lock_pf - dec_pf) <= 0.1 * lock_pf

    def test_flag_off_by_default(self):
        assert not SVRConfig().decoupled_context
        _, _, unit = run_with(SVRConfig())
        assert unit._context_slots is None

    def test_context_slots_created_when_enabled(self):
        _, _, unit = run_with(SVRConfig(decoupled_context=True))
        assert unit._context_slots is not None
