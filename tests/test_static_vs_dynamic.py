"""Static-vs-dynamic cross-validation (the analysis subsystem's ground
truth): for every GAP kernel, the chain the dynamic SVR unit actually
vectorizes must be contained in the chain the static taint analysis
predicts, and dynamically detected strides must match the static ones.

The static chain is a safe over-approximation — it propagates taint
flow-insensitively and never untaints — so containment, not equality, is
the invariant.  Equality cannot hold in general: runahead rounds see only
a window of the execution, and the dynamic tracker untaints registers
that are overwritten with clean values.
"""

import pytest

from repro.analysis import LoadClass, StrideAnalysis, build_cfg, taint_chain
from repro.svr.config import SVRConfig
from repro.workloads.registry import GAP_KERNELS, build_workload

from conftest import build_gather_workload, make_inorder

RUN_STEPS = 20_000


def run_dynamic(program, memory, steps=RUN_STEPS):
    core, _, unit = make_inorder(program, memory, svr=SVRConfig())
    core.run(steps)
    return unit


def static_tools(program):
    cfg = build_cfg(program)
    analysis = StrideAnalysis(cfg)
    return cfg, {info.pc: info for info in analysis.loads()}


def assert_dynamic_subset_of_static(program, unit, name):
    cfg, loads = static_tools(program)
    seeds = unit.chain_log.seed_pcs
    assert seeds, f"{name}: SVR never seeded a chain in {RUN_STEPS} steps"
    static_union = set(seeds)
    for pc in seeds:
        static_union |= taint_chain(cfg, pc).chain_pcs
    escaped = unit.chain_log.dependents - static_union
    assert not escaped, (
        f"{name}: dynamic chain pcs {sorted(escaped)} missing from the "
        f"static chains of seeds {sorted(seeds)}")
    return loads, seeds


class TestGather:
    def test_gather_dynamic_chain_is_subset(self):
        program, memory = build_gather_workload()
        unit = run_dynamic(program, memory)
        loads, seeds = assert_dynamic_subset_of_static(
            program, unit, "gather")
        # The striding index load is the (only) seed, statically and
        # dynamically.
        assert seeds == {7}
        assert loads[7].load_class is LoadClass.STRIDING

    def test_gather_strides_agree(self):
        program, memory = build_gather_workload()
        unit = run_dynamic(program, memory)
        _, loads = static_tools(program)
        assert unit.chain_log.seeds[7] == {loads[7].stride}


@pytest.mark.parametrize("kernel", GAP_KERNELS)
class TestGapKernels:
    def test_dynamic_chain_is_subset_of_static(self, kernel):
        workload = build_workload(f"{kernel}_KR", scale="tiny")
        unit = run_dynamic(workload.program, workload.memory)
        assert_dynamic_subset_of_static(workload.program, unit, kernel)

    def test_strides_agree_on_static_striding_seeds(self, kernel):
        workload = build_workload(f"{kernel}_KR", scale="tiny")
        unit = run_dynamic(workload.program, workload.memory)
        _, loads = static_tools(workload.program)
        overlap = 0
        for pc, observed_strides in unit.chain_log.seeds.items():
            info = loads.get(pc)
            if info is None or info.load_class is not LoadClass.STRIDING:
                # A statically indirect load can look striding for a
                # window (e.g. BFS queue offsets); no stride to compare.
                continue
            overlap += 1
            assert observed_strides == {info.stride}, (
                f"{kernel}: pc {pc} detected strides "
                f"{sorted(observed_strides)} but static says {info.stride}")
        # At least one dynamically seeded load per kernel must be one the
        # static analysis also calls striding.
        assert overlap > 0, (
            f"{kernel}: no dynamically seeded pc is statically striding")
