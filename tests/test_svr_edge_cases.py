"""SVR edge cases beyond the happy path: negative strides, SRF churn,
timeouts interacting with waiting mode, lane validity through chains."""

import numpy as np

from repro.isa.program import ProgramBuilder
from repro.svr.config import LoopBoundPolicy, SVRConfig

from conftest import build_gather_workload, make_inorder, make_memory


class TestNegativeStride:
    def build_reverse_gather(self, count=512):
        """Walks the index array backwards (BC's backward pass shape)."""
        memory = make_memory()
        rng = np.random.default_rng(41)
        idx = rng.integers(0, 4096, size=count, dtype=np.int64)
        idx_base = memory.alloc_array(idx, name="idx")
        data = memory.alloc(4096 << 6, name="data")
        b = ProgramBuilder()
        b.li("a0", idx_base)
        b.li("a1", data)
        b.li("t0", count - 1)
        b.label("loop")
        b.slli("t1", "t0", 3)
        b.add("t1", "a0", "t1")
        b.ld("t2", "t1", 0)              # striding, stride -8
        b.slli("t3", "t2", 6)
        b.add("t3", "a1", "t3")
        b.ld("t4", "t3", 0)              # indirect
        b.add("t5", "t5", "t4")
        b.addi("t0", "t0", -1)
        b.li("t7", 0)
        b.cmp_ge("t6", "t0", "t7")
        b.bnez("t6", "loop")
        b.halt()
        return b.build(), memory

    def test_negative_stride_triggers_runahead(self):
        program, memory = self.build_reverse_gather()
        core, hierarchy, unit = make_inorder(program, memory,
                                             svr=SVRConfig())
        core.run(6_000)
        assert unit.stats.prm_rounds > 0
        assert hierarchy.stats.prefetches_issued["svr"] > 0

    def test_negative_stride_prefetches_are_useful(self):
        program, memory = self.build_reverse_gather()
        core, hierarchy, unit = make_inorder(program, memory,
                                             svr=SVRConfig())
        core.run(6_000)
        stats = hierarchy.stats
        assert stats.prefetch_useful["svr"] > 5 * stats.prefetch_useless["svr"]

    def test_negative_stride_speedup(self):
        program, memory = self.build_reverse_gather()
        core, _, _ = make_inorder(program, memory)
        plain = core.run(5_000)
        program2, memory2 = self.build_reverse_gather()
        core2, _, _ = make_inorder(program2, memory2, svr=SVRConfig())
        svr = core2.run(5_000)
        assert svr.cycles < plain.cycles / 1.4


class TestSrfChurn:
    def test_single_srf_entry_still_works(self):
        """K=1: the head mapping is stolen by the first dependent write,
        but the stride prefetches themselves still land."""
        program, memory = build_gather_workload()
        core, hierarchy, unit = make_inorder(
            program, memory, svr=SVRConfig(srf_entries=1))
        core.run(3_000)
        assert unit.stats.prm_rounds > 0
        assert hierarchy.stats.prefetches_issued["svr"] > 0
        assert unit.srf.recycles > 0

    def test_vector_length_one(self):
        program, memory = build_gather_workload()
        core, hierarchy, unit = make_inorder(
            program, memory, svr=SVRConfig(vector_length=1))
        core.run(3_000)
        assert unit.stats.prm_rounds > 0
        # One lane per SVI at most.
        assert all(len(unit.mask) == 1 for _ in [0])

    def test_vector_length_128(self):
        program, memory = build_gather_workload(count=2048)
        core, hierarchy, unit = make_inorder(
            program, memory, svr=SVRConfig(vector_length=128))
        core.run(5_000)
        assert unit.stats.prm_rounds > 0
        assert hierarchy.stats.prefetches_issued["svr"] > 200


class TestTimeoutInteraction:
    def test_timeout_does_not_record_waiting_range_twice(self):
        """After a timeout the stride entry's range stays from generation
        time; the next in-range access must not re-trigger."""
        program, memory = build_gather_workload()
        cfg = SVRConfig(timeout_instructions=4)   # force timeouts
        core, _, unit = make_inorder(program, memory, svr=cfg)
        core.run(3_000)
        assert unit.stats.terminations["timeout"] > 0
        # Rounds remain spaced by waiting mode even with constant timeouts.
        iterations = core.stats.loads // 2
        assert unit.stats.prm_rounds < iterations / 4

    def test_tiny_timeout_still_prefetches_head(self):
        program, memory = build_gather_workload()
        core, hierarchy, unit = make_inorder(
            program, memory, svr=SVRConfig(timeout_instructions=1))
        core.run(3_000)
        assert hierarchy.stats.prefetches_issued["svr"] > 0


class TestPolicyEdges:
    def test_lbd_wait_eventually_runs(self):
        """LBD+Wait skips early rounds but engages once the loop branch
        trains the detector."""
        program, memory = build_gather_workload(count=1024)
        cfg = SVRConfig(policy=LoopBoundPolicy.LBD_WAIT)
        core, hierarchy, unit = make_inorder(program, memory, svr=cfg)
        core.run(10_000)
        assert unit.stats.prm_rounds > 0

    def test_ewma_throttles_short_loops(self):
        memory = make_memory()
        total = 1 << 14
        data = memory.alloc_array(list(range(total)), name="A")
        b = ProgramBuilder()
        b.li("a0", data)
        b.li("a1", 2048)
        b.li("a2", 3)
        b.li("t9", 0)
        b.label("rows")
        b.muli("t1", "t9", 509)
        b.andi("t1", "t1", total - 8)
        b.li("t2", 0)
        b.label("inner")
        b.add("t3", "t1", "t2")
        b.slli("t3", "t3", 3)
        b.add("t3", "a0", "t3")
        b.ld("t4", "t3", 0)
        b.addi("t2", "t2", 1)
        b.cmp_lt("t6", "t2", "a2")
        b.bnez("t6", "inner")
        b.addi("t9", "t9", 1)
        b.cmp_lt("t6", "t9", "a1")
        b.bnez("t6", "rows")
        b.halt()

        ewma_cfg = SVRConfig(policy=LoopBoundPolicy.EWMA,
                             accuracy_enabled=False)
        core, ewma_hier, unit = make_inorder(b.build(), memory, svr=ewma_cfg)
        core.run(20_000)

        memory2 = make_memory()
        data2 = memory2.alloc_array(list(range(total)), name="A")
        # identical program against fresh memory
        b2 = ProgramBuilder()
        b2.li("a0", data2)
        b2.li("a1", 2048)
        b2.li("a2", 3)
        b2.li("t9", 0)
        b2.label("rows")
        b2.muli("t1", "t9", 509)
        b2.andi("t1", "t1", total - 8)
        b2.li("t2", 0)
        b2.label("inner")
        b2.add("t3", "t1", "t2")
        b2.slli("t3", "t3", 3)
        b2.add("t3", "a0", "t3")
        b2.ld("t4", "t3", 0)
        b2.addi("t2", "t2", 1)
        b2.cmp_lt("t6", "t2", "a2")
        b2.bnez("t6", "inner")
        b2.addi("t9", "t9", 1)
        b2.cmp_lt("t6", "t9", "a1")
        b2.bnez("t6", "rows")
        b2.halt()
        max_cfg = SVRConfig(policy=LoopBoundPolicy.MAXLENGTH,
                            accuracy_enabled=False)
        core2, max_hier, _ = make_inorder(b2.build(), memory2, svr=max_cfg)
        core2.run(20_000)

        # EWMA issues far fewer (wasted) prefetches on 2-iteration runs.
        assert (ewma_hier.stats.prefetches_issued["svr"]
                < 0.6 * max_hier.stats.prefetches_issued["svr"])
