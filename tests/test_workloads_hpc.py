"""Functional-correctness tests for the HPC/DB kernels."""

import numpy as np
import pytest

from repro.cores.functional import FunctionalCore
from repro.workloads.base import VERTEX_STRIDE_SHIFT
from repro.workloads.hpc import (
    build_camel,
    build_graph500,
    build_hj2,
    build_hj8,
    build_kangaroo,
    build_nas_cg,
    build_nas_is,
    build_randacc,
)

MASK64 = (1 << 64) - 1


def complete(workload, cap=30_000_000):
    core = FunctionalCore(workload.program, workload.memory)
    core.run(cap)
    assert core.halted
    return core


class TestCamel:
    def test_two_level_gather_sum(self):
        workload = build_camel(elements=256, table_nodes=128, repeats=2)
        complete(workload)
        meta = workload.meta
        memory = workload.memory
        b_vals = meta["b_vals"]
        expected = 0
        for _ in range(2):
            for x in meta["a_vals"]:
                y = int(b_vals[int(x)])
                expected += memory.read_word(
                    meta["c"] + (y << VERTEX_STRIDE_SHIFT))
        # Kernel stores the sum into A[0].
        assert memory.read_word(meta["a"]) == expected & MASK64


class TestGraph500:
    def test_levels_match_bfs_depths(self):
        workload = build_graph500(nodes=96, degree=5)
        complete(workload)
        graph = workload.meta["graph"]
        memory = workload.memory
        base = workload.meta["level"]
        sentinel = workload.meta["sentinel"]
        # Reference BFS depths.
        depth = {0: 0}
        frontier = [0]
        while frontier:
            nxt = []
            for u in frontier:
                for v in graph.out_neighbors(u):
                    v = int(v)
                    if v not in depth:
                        depth[v] = depth[u] + 1
                        nxt.append(v)
            frontier = nxt
        for v in range(graph.num_nodes):
            got = memory.read_word(base + (v << VERTEX_STRIDE_SHIFT))
            assert got == depth.get(v, sentinel)


class TestHashJoin:
    @pytest.mark.parametrize("builder,bucket_size", [(build_hj2, 2),
                                                     (build_hj8, 8)])
    def test_match_sum_against_reference(self, builder, bucket_size):
        workload = builder(buckets=256, probes=512)
        complete(workload)
        meta = workload.meta
        table = meta["table_vals"]
        mask = meta["mask"]
        mult = meta["hash_mult"]
        slot_words = meta["slot_words"]
        bucket_words = bucket_size * slot_words
        expected = 0
        for key in meta["probe_vals"]:
            key = int(key)
            h = (key * mult) & mask
            for j in range(bucket_size):
                slot = h * bucket_words + j * slot_words
                slot_key = int(table[slot])
                if slot_key == key:
                    expected += int(table[slot + 1])
                    break
                if slot_key == 0:
                    break
        got = workload.memory.read_word(meta["result"])
        assert got == expected & MASK64

    def test_roughly_half_probes_match(self):
        workload = build_hj2(buckets=256, probes=512)
        complete(workload)
        assert workload.memory.read_word(workload.meta["result"]) > 0


class TestHistograms:
    def test_nas_is_counts(self):
        workload = build_nas_is(keys=512, bins=1024, repeats=2)
        complete(workload)
        meta = workload.meta
        expected = np.zeros(meta["bins"], dtype=np.int64)
        for _ in range(2):
            for key in meta["keys"]:
                expected[int(key)] += 1
        got = workload.memory.read_array(meta["hist"], meta["bins"])
        np.testing.assert_array_equal(got, expected)

    def test_kangaroo_hashed_counts(self):
        workload = build_kangaroo(keys=512, bins=1024, repeats=1)
        complete(workload)
        meta = workload.meta
        expected = np.zeros(meta["bins"], dtype=np.int64)
        for key in meta["keys"]:
            idx = (int(key) * meta["hash_mult"]) & meta["mask"]
            expected[idx] += 1
        got = workload.memory.read_array(meta["hist"], meta["bins"])
        np.testing.assert_array_equal(got, expected)

    def test_is_and_kangaroo_differ(self):
        """Same shape, different indexing — they must not be aliases."""
        is_wl = build_nas_is(keys=256, bins=512, repeats=1, seed=5)
        kg_wl = build_kangaroo(keys=256, bins=512, repeats=1, seed=5)
        complete(is_wl)
        complete(kg_wl)
        a = is_wl.memory.read_array(is_wl.meta["hist"], 512)
        b = kg_wl.memory.read_array(kg_wl.meta["hist"], 512)
        assert not np.array_equal(a, b)


class TestNasCg:
    def test_spmv_matches_reference(self):
        workload = build_nas_cg(nodes=64, degree=4, repeats=1)
        complete(workload)
        matrix = workload.meta["matrix"]
        memory = workload.memory
        x_base = workload.meta["x"]
        y_base = workload.meta["y"]
        for row in range(matrix.num_nodes):
            acc = 0
            start, end = matrix.offsets[row], matrix.offsets[row + 1]
            for idx in range(start, end):
                col = int(matrix.neighbors[idx])
                val = int(matrix.weights[idx])
                x = memory.read_word(x_base + (col << VERTEX_STRIDE_SHIFT))
                acc = (acc + ((val * x) >> 16)) & MASK64
            assert memory.read_word(y_base + row * 8) == acc


class TestRandacc:
    def test_xor_updates_match_reference(self):
        workload = build_randacc(updates=512, table_words=1024, repeats=2)
        complete(workload)
        meta = workload.meta
        expected = np.zeros(meta["table_words"], dtype=np.uint64)
        for _ in range(2):
            for r in meta["ran"]:
                idx = int(r) & meta["mask"]
                expected[idx] ^= np.uint64(int(r) & MASK64)
        got = workload.memory.read_array(meta["table"],
                                         meta["table_words"]).astype(np.uint64)
        np.testing.assert_array_equal(got, expected)

    def test_power_of_two_table_required(self):
        with pytest.raises(ValueError):
            build_randacc(table_words=1000)
