"""Tests for per-loop lane-batching legality plans (repro.analysis.vectorplan)."""

import json

from repro.analysis.vectorplan import (
    BATCHABLE,
    BATCHABLE_WITH_GUARD,
    SCALAR_ONLY,
    build_plan,
)
from repro.isa.program import ProgramBuilder
from repro.workloads import build_workload, workload_names
from repro.workloads.expectations import plan_expectation

from conftest import gather_program


def _short_flow_kernel():
    """for i: a[i] = a[i-1] + 1 — a distance-1 flow through memory."""
    b = ProgramBuilder("shortflow")
    b.li("a0", 0x1000)
    b.li("a2", 64)
    b.li("t0", 1)
    b.label("loop")
    b.slli("t1", "t0", 3)
    b.add("t1", "a0", "t1")
    b.ld("t2", "t1", -8)
    b.addi("t2", "t2", 1)
    b.st("t2", "t1", 0)
    b.addi("t0", "t0", 1)
    b.cmp_lt("t3", "t0", "a2")
    b.bnez("t3", "loop")
    b.halt()
    return b.build()


class TestVerdicts:
    def test_gather_loop_is_batchable(self):
        plan = build_plan(gather_program(0x1000, 0x2000, 64))
        assert len(plan.loops) == 1
        lp = plan.loops[0]
        assert lp.verdict == BATCHABLE
        assert lp.seeds == ((7, 8),)        # striding index load, stride 8
        assert lp.guards == () and lp.reasons == ()
        assert lp.trip_branch_pcs == (14,)

    def test_short_flow_forces_scalar_only(self):
        plan = build_plan(_short_flow_kernel(), vector_length=16)
        lp = plan.loops[0]
        assert lp.verdict == SCALAR_ONLY
        assert "short-flow" in {r.kind for r in lp.reasons}

    def test_short_flow_vanishes_at_vl1(self):
        # With one lane there is no intra-batch reordering, so a
        # distance-1 flow is harmless and the verdict flips.
        plan = build_plan(_short_flow_kernel(), vector_length=1)
        lp = plan.loops[0]
        assert lp.verdict != SCALAR_ONLY
        assert "short-flow" not in {r.kind for r in lp.reasons}

    def test_unseeded_loop_reports_no_striding_seed(self):
        b = ProgramBuilder("noseed")
        b.li("t0", 0)
        b.li("a2", 8)
        b.label("loop")
        b.addi("t0", "t0", 1)
        b.cmp_lt("t3", "t0", "a2")
        b.bnez("t3", "loop")
        b.halt()
        lp = build_plan(b.build()).loops[0]
        assert lp.verdict == SCALAR_ONLY
        assert lp.seeds == ()
        assert "no-striding-seed" in {r.kind for r in lp.reasons}


class TestPlanObject:
    def test_summary_and_lookup(self):
        plan = build_plan(gather_program(0x1000, 0x2000, 64), name="gather")
        assert plan.name == "gather"
        assert plan.summary == ((5, BATCHABLE, (), ()),)
        lp = plan.plan_for_seed(7)
        assert lp is not None and lp.header == 5
        assert plan.plan_for_seed(999) is None

    def test_fingerprint_is_deterministic(self):
        p1 = build_plan(gather_program(0x1000, 0x2000, 64), name="g")
        p2 = build_plan(gather_program(0x1000, 0x2000, 64), name="g")
        assert p1.fingerprint() == p2.fingerprint()
        assert len(p1.fingerprint()) == 64
        # Changing the vector length changes the plan identity.
        p3 = build_plan(gather_program(0x1000, 0x2000, 64), name="g",
                        vector_length=4)
        assert p3.fingerprint() != p1.fingerprint()

    def test_to_dict_is_json_ready(self):
        plan = build_plan(_short_flow_kernel(), name="sf")
        blob = json.loads(json.dumps(plan.to_dict()))
        assert blob["schema"] == 1
        assert blob["name"] == "sf"
        assert blob["loops"][0]["verdict"] == SCALAR_ONLY


class TestPinnedExpectations:
    def test_every_registered_workload_matches_its_pin(self):
        mismatches = []
        for name in list(workload_names()) + list(workload_names("spec")):
            workload = build_workload(name, scale="tiny")
            plan = build_plan(workload.program, name=name)
            expected = plan_expectation(name)
            if expected is None:
                mismatches.append((name, "unpinned"))
            elif plan.summary != expected:
                mismatches.append((name, plan.summary, expected))
        assert not mismatches, mismatches

    def test_gap_kernels_have_guarded_or_batchable_loops(self):
        # The paper's target workloads must never be wholly SCALAR_ONLY:
        # SVR's lane batching has to have something to chew on.
        for name in workload_names():
            workload = build_workload(name, scale="tiny")
            plan = build_plan(workload.program, name=name)
            verdicts = {lp.verdict for lp in plan.loops if lp.seeds}
            assert verdicts & {BATCHABLE, BATCHABLE_WITH_GUARD}, (
                name, plan.summary)
