"""Unit tests for the resilient execution layer (repro.exec)."""

import json

import pytest

from repro.exec import (
    CRASH,
    HANG,
    CellFailedError,
    ExecConfig,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    ResultView,
    RunFailure,
    RunJournal,
    RunSpec,
    config_key,
    parse_fault,
    run_cells,
)
from repro.harness.runner import run, technique
from repro.obs.metrics import MetricsRegistry, install_standard_metrics
from repro.obs.probes import ProbeBus


def _spec(workload="Camel", tech="inorder", scale="tiny"):
    return RunSpec.make(workload, tech, scale=scale)


def _quiet(**kwargs) -> ExecConfig:
    kwargs.setdefault("bus", ProbeBus())
    return ExecConfig(**kwargs)


class TestConfigKey:
    def test_deterministic(self):
        a, b = _spec(), _spec()
        assert a.key == b.key
        assert len(a.key) == 16

    def test_sensitive_to_any_knob(self):
        base = _spec(tech="svr16")
        keys = {
            base.key,
            _spec(tech="svr64").key,
            _spec(workload="HJ2", tech="svr16").key,
            RunSpec.make("Camel", "svr16", scale="bench").key,
            RunSpec.make("Camel", technique("svr16", srf_entries=2),
                         scale="tiny").key,
        }
        assert len(keys) == 5

    def test_key_order_independent(self):
        assert (config_key({"a": 1, "b": 2})
                == config_key({"b": 2, "a": 1}))


class TestResultView:
    def test_matches_live_simresult(self):
        result = run("Camel", technique("svr16"), scale="tiny")
        view = ResultView(result.to_dict())
        assert view.ipc == pytest.approx(result.ipc)
        assert view.cpi == pytest.approx(result.cpi)
        assert view.energy_per_instruction_nj == pytest.approx(
            result.energy_per_instruction_nj)
        assert view.cpi_stack() == pytest.approx(result.cpi_stack())
        assert view.hierarchy.accuracy("svr") == pytest.approx(
            result.hierarchy.accuracy("svr"))
        assert view.hierarchy.dram_fetches == dict(
            result.hierarchy.dram_fetches)
        assert view.metric("ipc") == pytest.approx(result.ipc)
        assert view.metric("energy_per_instruction_nj") == pytest.approx(
            result.energy_per_instruction_nj)

    def test_survives_json_round_trip(self):
        result = run("Camel", technique("inorder"), scale="tiny")
        view = ResultView(json.loads(json.dumps(result.to_dict(),
                                                default=str)))
        assert view.ipc == pytest.approx(result.ipc)

    def test_unknown_metric_raises(self):
        result = run("Camel", technique("inorder"), scale="tiny")
        with pytest.raises(ValueError, match="not an exported scalar"):
            ResultView(result.to_dict()).metric("nonsense")


class TestExecConfigValidation:
    def test_resume_requires_journal(self):
        with pytest.raises(ValueError, match="resume requires a journal"):
            ExecConfig(resume=True)

    def test_timeout_requires_isolation(self):
        with pytest.raises(ValueError, match="isolation"):
            ExecConfig(timeout_s=1.0, isolate=False)

    def test_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            ExecConfig(jobs=0)

    def test_auto_isolation(self):
        assert not ExecConfig().effective_isolate
        assert ExecConfig(jobs=2).effective_isolate
        assert ExecConfig(timeout_s=1.0).effective_isolate
        assert ExecConfig(jobs=4, isolate=False).effective_isolate is False

    def test_backoff_is_bounded(self):
        cfg = ExecConfig(backoff_s=1.0, backoff_factor=10.0,
                         max_backoff_s=3.0)
        assert cfg.backoff_delay(1) == 1.0
        assert cfg.backoff_delay(2) == 3.0


class TestInlineExecution:
    def test_dedup_shared_cells(self):
        specs = [_spec(), _spec(), _spec(tech="svr16")]
        report = run_cells(specs, _quiet())
        assert len(report.outcomes) == 2
        assert report.ok_count == 2
        view = report.result_for(specs[0])
        assert view is not None and view.ipc > 0

    def test_injected_crash_is_salvaged(self):
        plan = FaultPlan(specs=(FaultSpec(workload="Camel",
                                          technique="svr16"),))
        specs = [_spec(tech="svr16"), _spec(workload="HJ2", tech="svr16")]
        report = run_cells(specs, _quiet(faults=plan, retries=0))
        assert report.failed_count == 1
        assert report.ok_count == 1
        (failure,) = report.failures
        assert failure.kind == CRASH
        assert failure.workload == "Camel"
        assert failure.attempts == 1
        assert report.result_for(specs[0]) is None
        assert report.result_for(specs[1]) is not None

    def test_inline_hang_classified_as_hang(self):
        plan = FaultPlan(specs=(FaultSpec(kind="hang"),))
        report = run_cells([_spec()], _quiet(faults=plan, retries=0))
        (failure,) = report.failures
        assert failure.kind == HANG

    def test_flaky_fault_succeeds_on_retry(self):
        plan = FaultPlan(specs=(FaultSpec(kind="flaky"),))
        report = run_cells([_spec()],
                           _quiet(faults=plan, retries=1, backoff_s=0.0))
        (outcome,) = report.outcomes
        assert outcome.ok
        assert outcome.attempts == 2

    def test_strict_mode_raises_original_exception(self):
        plan = FaultPlan(specs=(FaultSpec(),))
        with pytest.raises(InjectedCrash):
            run_cells([_spec()],
                      _quiet(faults=plan, retries=0, salvage=False))


class TestIsolatedExecution:
    def test_parallel_jobs_complete(self):
        specs = [_spec(), _spec(tech="ooo"), _spec(tech="svr16"),
                 _spec(workload="HJ2")]
        report = run_cells(specs, _quiet(jobs=2))
        assert report.ok_count == 4
        inline = run_cells([specs[0]], _quiet())
        assert (report.result_for(specs[0]).ipc
                == pytest.approx(inline.result_for(specs[0]).ipc))

    def test_worker_crash_is_salvaged(self):
        plan = FaultPlan(specs=(FaultSpec(workload="Camel"),))
        specs = [_spec(), _spec(workload="HJ2")]
        report = run_cells(specs, _quiet(jobs=2, retries=0, faults=plan))
        assert report.ok_count == 1
        (failure,) = report.failures
        assert failure.kind == CRASH and failure.workload == "Camel"

    def test_hang_hits_wall_clock_timeout(self):
        plan = FaultPlan(specs=(FaultSpec(workload="Camel", kind="hang"),))
        specs = [_spec(), _spec(workload="HJ2")]
        report = run_cells(
            specs, _quiet(jobs=2, timeout_s=1.0, retries=0, faults=plan))
        assert report.ok_count == 1
        (failure,) = report.failures
        assert failure.kind == HANG
        assert "timeout" in failure.message

    def test_strict_mode_raises_cell_failed(self):
        plan = FaultPlan(specs=(FaultSpec(),))
        with pytest.raises(CellFailedError) as excinfo:
            run_cells([_spec()],
                      _quiet(jobs=2, retries=0, faults=plan,
                             salvage=False))
        assert excinfo.value.failure.kind == CRASH


class TestFaultPlan:
    def test_decide_is_deterministic(self):
        plan = FaultPlan(seed=7, crash_rate=0.5)
        decisions = [plan.decide(f"k{i}", "w", "t", 1) for i in range(32)]
        assert decisions == [plan.decide(f"k{i}", "w", "t", 1)
                             for i in range(32)]
        assert "crash" in decisions and None in decisions

    def test_seed_changes_victims(self):
        a = FaultPlan(seed=1, crash_rate=0.5)
        b = FaultPlan(seed=2, crash_rate=0.5)
        keys = [f"k{i}" for i in range(64)]
        assert ([a.decide(k, "w", "t", 1) for k in keys]
                != [b.decide(k, "w", "t", 1) for k in keys])

    def test_glob_matching(self):
        spec = FaultSpec(workload="BC_*", technique="svr*")
        assert spec.matches("BC_UR", "svr16")
        assert not spec.matches("PR_KR", "svr16")
        assert not spec.matches("BC_UR", "inorder")

    def test_times_budget(self):
        plan = FaultPlan(specs=(FaultSpec(kind="crash", times=2),))
        assert plan.decide("k", "w", "t", 1) == "crash"
        assert plan.decide("k", "w", "t", 2) == "crash"
        assert plan.decide("k", "w", "t", 3) is None

    def test_flaky_only_first_attempt(self):
        plan = FaultPlan(specs=(FaultSpec(kind="flaky"),))
        assert plan.decide("k", "w", "t", 1) == "crash"
        assert plan.decide("k", "w", "t", 2) is None

    def test_parse_fault(self):
        spec = parse_fault("Camel/svr16:hang:2")
        assert spec == FaultSpec(workload="Camel", technique="svr16",
                                 kind="hang", times=2)
        assert parse_fault("Camel:crash") == FaultSpec(
            workload="Camel", technique="*", kind="crash")
        with pytest.raises(ValueError, match="must look like"):
            parse_fault("Camel")
        with pytest.raises(ValueError, match="kind"):
            parse_fault("Camel/*:explode")
        with pytest.raises(ValueError, match="TIMES"):
            parse_fault("Camel/*:crash:soon")

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError, match="crash_rate"):
            FaultPlan(crash_rate=1.5)


class TestJournal:
    def test_last_record_wins(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.append_cell(key="k1", workload="w", technique="t",
                            scale="tiny", status="failed", attempts=1,
                            elapsed_s=0.1,
                            failure={"kind": "crash", "message": "boom"})
        journal.append_cell(key="k1", workload="w", technique="t",
                            scale="tiny", status="ok", attempts=1,
                            elapsed_s=0.1, result={"ipc": 1.0})
        records = journal.load()
        assert records["k1"]["status"] == "ok"

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path)
        journal.append_cell(key="k1", workload="w", technique="t",
                            scale="tiny", status="ok", attempts=1,
                            elapsed_s=0.1, result={"ipc": 1.0})
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"event": "cell", "key": "k2", "stat')  # torn write
        records = journal.load()
        assert set(records) == {"k1"}

    def test_marker_events_ignored_on_load(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.append_event("retry", key="k1", attempt=1, kind="crash")
        journal.append_event("timeout", key="k1", attempt=2)
        assert journal.load() == {}


class TestObservability:
    def test_probes_and_metrics(self):
        bus = ProbeBus()
        registry = MetricsRegistry()
        install_standard_metrics(bus, registry)
        plan = FaultPlan(specs=(FaultSpec(workload="Camel",
                                          technique="svr16"),))
        specs = [_spec(tech="svr16"), _spec(workload="HJ2", tech="svr16")]
        run_cells(specs, ExecConfig(faults=plan, retries=1, backoff_s=0.0,
                                    bus=bus))
        snap = registry.snapshot()
        assert snap["exec.cells"] == 2
        assert snap["exec.failures"] == 1
        assert snap["exec.failures.crash"] == 1
        assert snap["exec.retries"] == 1

    def test_failure_str_is_informative(self):
        failure = RunFailure(key="k", workload="Camel", technique="svr16",
                             kind=CRASH, message="boom", attempts=2)
        text = str(failure)
        assert "Camel/svr16" in text and "crash" in text and "boom" in text

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            RunFailure(key="k", workload="w", technique="t",
                       kind="melted", message="?")
