"""Tests for the per-figure experiment functions (small-scale shapes)."""

import pytest

from repro.harness import experiments
from repro.harness.report import format_series, format_table, harmonic_mean

TINY = ("PR_UR", "Camel")


class TestHelpers:
    def test_harmonic_mean_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_harmonic_mean_dominated_by_small_values(self):
        assert harmonic_mean([1.0, 100.0]) < 2.0

    def test_harmonic_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_harmonic_mean_empty(self):
        assert harmonic_mean([]) == 0.0

    def test_format_table_renders_all_cells(self):
        text = format_table({"row1": {"a": 1.0, "b": 2.0}},
                            title="T")
        assert "T" in text and "row1" in text
        assert "1.00" in text and "2.00" in text

    def test_format_table_missing_cell(self):
        text = format_table({"r": {"a": 1.0}}, columns=["a", "b"])
        assert "-" in text

    def test_format_series(self):
        text = format_series({"x": 1.5}, title="S")
        assert "S" in text and "1.500" in text


class TestGroups:
    def test_groups_cover_the_suite(self):
        members = [w for ws in experiments.GROUPS.values() for w in ws]
        assert len(members) == 33

    def test_fig15_policies_match_paper(self):
        values = [p.value for p in experiments.FIG15_POLICIES]
        assert values == ["lbd+wait", "maxlength", "lbd+maxlength",
                          "lbd+cv", "ewma", "tournament"]


class TestFigureFunctions:
    """Each experiment runs end to end on a tiny subset and produces the
    figure's row/series structure."""

    def test_fig1_structure_and_baseline(self):
        out = experiments.fig1(workloads=TINY, scale="tiny",
                               techniques=("inorder", "svr16"))
        assert out["inorder"]["norm_ipc"] == pytest.approx(1.0)
        assert out["inorder"]["norm_energy"] == pytest.approx(1.0)
        assert out["svr16"]["norm_ipc"] > 1.0

    def test_fig3_has_dram_bucket_and_average(self):
        out = experiments.fig3(scale="tiny",
                               groups={"PR": ("PR_UR",), "HPC-DB": ("Camel",)})
        assert "Avg" in out
        stack = out["PR"]["inorder"]
        assert "mem-dram" in stack and stack["mem-dram"] > 0

    def test_fig11_rows(self):
        out = experiments.fig11(workloads=TINY, scale="tiny",
                                techniques=("inorder", "svr16"))
        for workload in TINY:
            assert out[workload]["inorder"] > out[workload]["svr16"]

    def test_fig12_energy_rows(self):
        out = experiments.fig12(workloads=TINY, scale="tiny",
                                techniques=("inorder", "svr16"))
        for workload in TINY:
            assert out[workload]["svr16"] > 0

    def test_fig13a_accuracy_in_unit_range(self):
        out = experiments.fig13a(groups={"PR": ("PR_UR",)}, scale="tiny")
        for tech, value in out["PR"].items():
            assert 0.0 <= value <= 1.0, tech

    def test_fig13b_baseline_total_is_one(self):
        out = experiments.fig13b(groups={"PR": ("PR_UR",)}, scale="tiny")
        assert out["PR"]["inorder.total"] == pytest.approx(1.0)
        assert out["PR"]["svr16.total"] > 0

    def test_fig14_includes_hmean(self):
        out = experiments.fig14(workloads=("namd", "leela"), scale="tiny")
        assert "H-mean" in out
        assert 0.5 < out["H-mean"] <= 1.6

    def test_fig15_rows_per_policy(self):
        out = experiments.fig15(length=8, scale="tiny",
                                groups={"G": ("Camel",)})
        assert set(out) == {p.value for p in experiments.FIG15_POLICIES}
        for row in out.values():
            assert "H-mean" in row

    def test_fig16_structure(self):
        out = experiments.fig16(workloads=("Camel",), scale="tiny",
                                widths=(1, 4), lengths=(8,))
        assert set(out["svr8"]) == {1, 4}

    def test_fig17_series(self):
        out = experiments.fig17(workloads=("Camel",), scale="tiny",
                                mshrs=(1, 16), ptws=(4,), lengths=(8,))
        series = out["svr8-ptw4"]
        assert series[16] > series[1] * 0.8   # more MSHRs never much worse

    def test_fig18_series(self):
        out = experiments.fig18(workloads=("Camel",), scale="tiny",
                                bandwidths=(12.5, 50.0), lengths=(8,))
        assert set(out["svr8"]) == {12.5, 50.0}

    def test_table2_matches_overhead_module(self):
        out = experiments.table2(lengths=(16,))
        assert out["svr16"]["bits"] == 17738

    def test_dvr_ablation_functions(self):
        recycling = experiments.dvr_recycling(workloads=("Camel",),
                                              scale="tiny")
        assert recycling["svr16-lru-k8"] > 0
        waiting = experiments.dvr_waiting_mode(workloads=("Camel",),
                                               scale="tiny")
        assert waiting["svr16"] > waiting["svr16-no-waiting"] * 0.5
        copy_cost = experiments.register_copy_cost(workloads=("Camel",),
                                                   scale="tiny")
        assert copy_cost["svr16"] >= copy_cost["svr16-regcopy"] * 0.9
