"""Tests for loop-level memory-dependence analysis (repro.analysis.memdep).

Each kernel is the smallest program exhibiting one dependence shape; the
assertions pin the (verdict, basis, reason, distance) tuple the analysis
must derive for it.
"""

from repro.analysis.cfg import build_cfg
from repro.analysis.memdep import InvPart, MemDepAnalysis
from repro.isa.program import ProgramBuilder

from conftest import gather_program


def _analyze(program):
    memdep = MemDepAnalysis(build_cfg(program))
    deps = memdep.analyze()
    assert len(deps) == 1
    return deps[0]


def _sweep_kernel(load_disp: int, store_disp: int = 0, n: int = 8):
    """for i: a[i + store_disp/8] = a[i + load_disp/8]  (one array)."""
    b = ProgramBuilder("sweep")
    b.li("a0", 0x1000)
    b.li("a2", n)
    b.li("t0", 0)
    b.label("loop")
    b.slli("t1", "t0", 3)
    b.add("t1", "a0", "t1")
    b.ld("t2", "t1", load_disp)
    b.st("t2", "t1", store_disp)
    b.addi("t0", "t0", 1)
    b.cmp_lt("t3", "t0", "a2")
    b.bnez("t3", "loop")
    b.halt()
    return b.build()


class TestProvedTier:
    def test_exact_distance_between_affine_accesses(self):
        # load a[i+1], store a[i]: a provable flow one iteration apart.
        deps = _analyze(_sweep_kernel(load_disp=8))
        edges = [e for e in deps.edges if e.kind == "store-load"]
        assert len(edges) == 1
        edge = edges[0]
        assert edge.verdict == "distance"
        assert edge.basis == "proved"
        assert edge.reason == "exact-distance"
        assert abs(edge.distance) == 1

    def test_same_address_is_distance_zero(self):
        deps = _analyze(_sweep_kernel(load_disp=0))
        edge = [e for e in deps.edges if e.kind == "store-load"][0]
        assert edge.verdict == "distance" and edge.distance == 0

    def test_non_divisible_displacement_is_independent(self):
        # Stride 8, displacement 4: the access streams interleave but can
        # never collide.
        deps = _analyze(_sweep_kernel(load_disp=4))
        edge = [e for e in deps.edges if e.kind == "store-load"][0]
        assert edge.verdict == "independent"
        assert edge.basis == "proved"
        assert edge.reason == "non-divisible"

    def test_invariant_address_recurrence(self):
        # acc loaded and stored at the same loop-invariant address every
        # iteration: a serial reduction through memory.
        b = ProgramBuilder("memacc")
        b.li("a0", 0x1000)
        b.li("a2", 8)
        b.li("t0", 0)
        b.label("loop")
        b.ld("t2", "a0", 0)
        b.addi("t2", "t2", 1)
        b.st("t2", "a0", 0)
        b.addi("t0", "t0", 1)
        b.cmp_lt("t3", "t0", "a2")
        b.bnez("t3", "loop")
        b.halt()
        deps = _analyze(b.build())
        edge = [e for e in deps.edges if e.kind == "store-load"][0]
        assert edge.verdict == "may-alias"
        assert edge.reason == "invariant-address"

    def test_distinct_constant_bases_resolve_exactly(self):
        # Two li-constant arrays: both addresses are absolute, so the
        # analysis proves the exact (huge) distance rather than assuming.
        b = ProgramBuilder("twoconst")
        b.li("a0", 0x1000)
        b.li("a1", 0x8000)
        b.li("a2", 8)
        b.li("t0", 0)
        b.label("loop")
        b.slli("t1", "t0", 3)
        b.add("t2", "a0", "t1")
        b.ld("t3", "t2", 0)
        b.add("t4", "a1", "t1")
        b.st("t3", "t4", 0)
        b.addi("t0", "t0", 1)
        b.cmp_lt("t5", "t0", "a2")
        b.bnez("t5", "loop")
        b.halt()
        deps = _analyze(b.build())
        edge = [e for e in deps.edges if e.kind == "store-load"][0]
        assert edge.basis == "proved"
        # 0x7000 bytes apart at stride 8.
        assert edge.verdict == "distance" and abs(edge.distance) == 0xE00


class TestAssumedTier:
    def test_distinct_symbolic_regions_assumed_independent(self):
        # Base pointers loaded from memory before the loop: two distinct
        # root defs = two allocation-site handles, assumed disjoint.  The
        # dynamic oracle is what backs this assumption at runtime.
        b = ProgramBuilder("tworegion")
        b.li("a0", 0x100)
        b.ld("a1", "a0", 0)        # base of array A (symbolic root)
        b.ld("a2", "a0", 8)        # base of array B (symbolic root)
        b.li("a3", 8)
        b.li("t0", 0)
        b.label("loop")
        b.slli("t1", "t0", 3)
        b.add("t2", "a1", "t1")
        b.ld("t3", "t2", 0)
        b.add("t4", "a2", "t1")
        b.st("t3", "t4", 0)
        b.addi("t0", "t0", 1)
        b.cmp_lt("t5", "t0", "a3")
        b.bnez("t5", "loop")
        b.halt()
        deps = _analyze(b.build())
        edge = [e for e in deps.edges if e.kind == "store-load"][0]
        assert edge.verdict == "independent"
        assert edge.basis == "assumed"
        assert edge.reason == "distinct-regions"

    def test_same_symbolic_region_may_alias(self):
        # Load and store through the same loaded base but different IV
        # scales: same region, no provable distance.
        b = ProgramBuilder("onereg")
        b.li("a0", 0x100)
        b.ld("a1", "a0", 0)
        b.li("a3", 8)
        b.li("t0", 0)
        b.label("loop")
        b.slli("t1", "t0", 3)
        b.add("t2", "a1", "t1")
        b.ld("t3", "t2", 0)
        b.slli("t1", "t0", 4)      # scale 16: different affine family
        b.add("t4", "a1", "t1")
        b.st("t3", "t4", 0)
        b.addi("t0", "t0", 1)
        b.cmp_lt("t5", "t0", "a3")
        b.bnez("t5", "loop")
        b.halt()
        deps = _analyze(b.build())
        edge = [e for e in deps.edges if e.kind == "store-load"][0]
        assert edge.verdict == "may-alias"
        assert edge.reason == "same-region"


class TestAddressLattice:
    def test_gather_access_kinds(self):
        deps = _analyze(gather_program(0x1000, 0x2000, 8))
        kinds = {a.pc: a.expr.kind for a in deps.accesses}
        strides = {a.pc: a.stride for a in deps.accesses}
        # pc 7 is the striding index load, pc 10 the indirect gather.
        assert kinds[7] == "affine" and strides[7] == 8
        assert kinds[10] == "loaddep" and strides[10] is None

    def test_branch_classes(self):
        deps = _analyze(gather_program(0x1000, 0x2000, 8))
        assert [(b.pc, b.cls) for b in deps.branches] == [(14, "trip")]

    def test_invpart_delta(self):
        a = InvPart(frozenset(), 0x100, True)
        b = InvPart(frozenset(), 0x180, True)
        assert a.delta(b) == 0x80
        r1 = InvPart(frozenset({3}), 8, False)
        r2 = InvPart(frozenset({3}), 24, False)
        assert r1.delta(r2) == 16
        other = InvPart(frozenset({4}), 8, False)
        assert r1.delta(other) is None

    def test_region_keys(self):
        assert InvPart(frozenset(), 0x100, True).region_key() \
            == ("abs", 0x100)
        assert InvPart(frozenset({3}), 8, False).region_key() \
            == ("roots", (3,))
        assert InvPart(frozenset(), None, False).region_key() is None

    def test_serialization_is_json_ready(self):
        import json

        deps = _analyze(gather_program(0x1000, 0x2000, 8))
        blob = json.dumps([a.to_dict() for a in deps.accesses]
                          + [e.to_dict() for e in deps.edges])
        assert "affine" in blob and "loaddep" in blob
