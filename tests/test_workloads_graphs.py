"""Unit tests for CSR graphs and the paper's five input generators."""

import numpy as np
import pytest

from repro.workloads.graphs import (
    GRAPH_INPUTS,
    graph_for_input,
    kronecker_graph,
    power_law_graph,
    uniform_random_graph,
)


class TestCsrInvariants:
    @pytest.mark.parametrize("name", GRAPH_INPUTS)
    def test_offsets_monotone_and_bounded(self, name):
        g = graph_for_input(name, "tiny")
        offsets = g.offsets
        assert offsets[0] == 0
        assert np.all(np.diff(offsets) >= 0)
        assert offsets[-1] == len(g.neighbors)

    @pytest.mark.parametrize("name", GRAPH_INPUTS)
    def test_neighbors_in_range(self, name):
        g = graph_for_input(name, "tiny")
        if len(g.neighbors):
            assert g.neighbors.min() >= 0
            assert g.neighbors.max() < g.num_nodes

    @pytest.mark.parametrize("name", GRAPH_INPUTS)
    def test_no_self_loops(self, name):
        g = graph_for_input(name, "tiny")
        for u in range(g.num_nodes):
            assert u not in g.out_neighbors(u)

    def test_degree_accessor(self):
        g = uniform_random_graph(64, 4, seed=1)
        for u in range(g.num_nodes):
            assert g.degree(u) == len(g.out_neighbors(u))

    def test_weighted_graph_has_positive_weights(self):
        g = uniform_random_graph(64, 4, seed=1, weighted=True)
        assert g.weights is not None
        assert len(g.weights) == g.num_edges
        assert g.weights.min() >= 1


class TestGenerators:
    def test_uniform_deterministic_by_seed(self):
        a = uniform_random_graph(128, 4, seed=7)
        b = uniform_random_graph(128, 4, seed=7)
        np.testing.assert_array_equal(a.neighbors, b.neighbors)

    def test_different_seeds_differ(self):
        a = uniform_random_graph(128, 4, seed=7)
        b = uniform_random_graph(128, 4, seed=8)
        assert not np.array_equal(a.neighbors, b.neighbors)

    def test_kronecker_size(self):
        g = kronecker_graph(scale=8, edge_factor=4, seed=2)
        assert g.num_nodes == 256
        assert g.num_edges > 0

    def test_kronecker_is_skewed(self):
        """R-MAT graphs concentrate edges: skew far above uniform."""
        kron = kronecker_graph(scale=10, edge_factor=8, seed=2)
        uni = uniform_random_graph(1024, 8, seed=1)
        assert kron.degree_skew() > uni.degree_skew()

    def test_power_law_skew_parameter_orders(self):
        """Lower alpha = heavier tail = more skew."""
        heavy = power_law_graph(1024, 8, alpha=1.9, seed=4, name="h")
        light = power_law_graph(1024, 8, alpha=2.9, seed=4, name="l")
        assert heavy.degree_skew() > light.degree_skew()

    def test_surrogate_ordering_matches_real_graphs(self):
        """TW most skewed; ORK densest (per the real datasets)."""
        graphs = {n: graph_for_input(n, "tiny") for n in ("LJN", "TW", "ORK")}
        assert graphs["TW"].degree_skew() >= graphs["LJN"].degree_skew()
        assert graphs["ORK"].average_degree > graphs["LJN"].average_degree

    def test_scales(self):
        tiny = graph_for_input("UR", "tiny")
        bench = graph_for_input("UR", "bench")
        assert bench.num_nodes > tiny.num_nodes

    def test_unknown_input_rejected(self):
        with pytest.raises(ValueError):
            graph_for_input("FACEBOOK")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            graph_for_input("UR", scale="huge")
