"""Tests for the timing-free functional interpreter."""

from repro.cores.functional import FunctionalCore
from repro.isa.program import ProgramBuilder
from repro.memory.main_memory import MainMemory


def build(fn):
    memory = MainMemory(capacity_bytes=1 << 20)
    b = ProgramBuilder()
    fn(b, memory)
    return FunctionalCore(b.build(), memory), memory


class TestExecution:
    def test_halts_and_counts(self):
        core, _ = build(lambda b, m: (b.li("t0", 1), b.halt()))
        assert core.run() == 2
        assert core.halted

    def test_register_results(self):
        def prog(b, m):
            b.li("t0", 6)
            b.muli("t1", "t0", 7)
            b.halt()
        core, _ = build(prog)
        core.run()
        assert core.regs.read(21) == 42

    def test_memory_side_effects(self):
        target = []

        def prog(b, m):
            addr = m.alloc_zeros(1, name="cell")
            target.append(addr)
            b.li("a0", addr)
            b.li("t0", 99)
            b.st("t0", "a0", 0)
            b.halt()
        core, memory = build(prog)
        core.run()
        assert memory.read_word(target[0]) == 99

    def test_loop_control_flow(self):
        def prog(b, m):
            b.li("t0", 0)
            b.li("t1", 25)
            b.label("loop")
            b.addi("t0", "t0", 1)
            b.cmp_lt("t2", "t0", "t1")
            b.bnez("t2", "loop")
            b.halt()
        core, _ = build(prog)
        core.run()
        assert core.regs.read(20) == 25

    def test_instruction_cap_stops_runaway(self):
        def prog(b, m):
            b.label("spin")
            b.jmp("spin")
        core, _ = build(prog)
        assert core.run(max_instructions=500) == 500
        assert not core.halted

    def test_running_off_the_end_halts(self):
        core, _ = build(lambda b, m: b.nop())
        core.run()
        assert core.halted
