"""Unit tests for the mini-ISA: encoding, registers, assembler, executor."""

import pytest

from repro.isa.executor import (
    FP_SHIFT,
    ExecResult,
    alu_compute,
    execute,
    fixed_point,
    from_fixed_point,
)
from repro.isa.instructions import Instruction, OpClass, Opcode, op_class
from repro.isa.program import ProgramBuilder
from repro.isa.registers import (
    NUM_REGS,
    RegisterFile,
    reg_index,
    to_signed64,
    wrap64,
)
from repro.memory.main_memory import MainMemory


class TestRegisters:
    def test_x0_is_hardwired_zero(self):
        regs = RegisterFile()
        regs.write(0, 123)
        assert regs.read(0) == 0

    def test_write_read_roundtrip(self):
        regs = RegisterFile()
        regs.write(5, 42)
        assert regs.read(5) == 42

    def test_writes_wrap_to_64_bits(self):
        regs = RegisterFile()
        regs.write(3, 1 << 64)
        assert regs.read(3) == 0
        regs.write(3, (1 << 64) + 7)
        assert regs.read(3) == 7

    def test_negative_values_wrap(self):
        regs = RegisterFile()
        regs.write(4, -1)
        assert regs.read(4) == (1 << 64) - 1

    def test_reg_index_by_name(self):
        assert reg_index("x7") == 7
        assert reg_index("zero") == 0
        assert reg_index("a0") == 10
        assert reg_index("t0") == 20
        assert reg_index("s0") == 3

    def test_reg_index_by_int_passthrough(self):
        assert reg_index(13) == 13

    def test_reg_index_none(self):
        assert reg_index(None) is None

    def test_reg_index_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            reg_index("y9")

    def test_reg_index_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            reg_index(NUM_REGS)

    def test_snapshot_and_load(self):
        regs = RegisterFile()
        regs.write(9, 99)
        snap = regs.snapshot()
        other = RegisterFile()
        other.load(snap)
        assert other.read(9) == 99

    def test_load_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            RegisterFile().load([0] * 5)

    def test_to_signed64(self):
        assert to_signed64((1 << 64) - 1) == -1
        assert to_signed64(5) == 5
        assert to_signed64(1 << 63) == -(1 << 63)

    def test_wrap64(self):
        assert wrap64(-1) == (1 << 64) - 1
        assert wrap64(1 << 65) == 0


class TestInstruction:
    def test_opclass_mapping(self):
        assert op_class(Opcode.LD) is OpClass.LOAD
        assert op_class(Opcode.ST) is OpClass.STORE
        assert op_class(Opcode.ADD) is OpClass.ALU
        assert op_class(Opcode.FADD) is OpClass.FP
        assert op_class(Opcode.CMP_LT) is OpClass.CMP
        assert op_class(Opcode.BNEZ) is OpClass.BRANCH
        assert op_class(Opcode.JMP) is OpClass.JUMP
        assert op_class(Opcode.HALT) is OpClass.HALT

    def test_sources_for_two_operand(self):
        inst = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        assert inst.sources() == (2, 3)

    def test_sources_for_load(self):
        inst = Instruction(Opcode.LD, rd=1, rs1=2)
        assert inst.sources() == (2,)

    def test_is_flags(self):
        assert Instruction(Opcode.LD, rd=1, rs1=2).is_load
        assert Instruction(Opcode.ST, rs1=1, rs2=2).is_store
        assert Instruction(Opcode.BNEZ, rs1=1, target=0).is_branch
        assert Instruction(Opcode.JMP, target=0).is_control
        assert not Instruction(Opcode.ADD, rd=1, rs1=1, rs2=1).is_control


class TestProgramBuilder:
    def test_forward_label_resolution(self):
        b = ProgramBuilder()
        b.jmp("end")
        b.nop()
        b.label("end")
        b.halt()
        program = b.build()
        assert program[0].target == 2

    def test_backward_label_resolution(self):
        b = ProgramBuilder()
        b.label("top")
        b.nop()
        b.jmp("top")
        program = b.build()
        assert program[1].target == 0

    def test_undefined_label_raises(self):
        b = ProgramBuilder()
        b.jmp("nowhere")
        with pytest.raises(ValueError, match="undefined label"):
            b.build()

    def test_duplicate_label_raises(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(ValueError, match="duplicate"):
            b.label("x")

    def test_fresh_labels_are_unique(self):
        b = ProgramBuilder()
        assert b.fresh_label() != b.fresh_label()

    def test_register_names_resolved(self):
        b = ProgramBuilder()
        b.add("a0", "t0", "x3")
        program = b.build()
        inst = program[0]
        assert (inst.rd, inst.rs1, inst.rs2) == (10, 20, 3)

    def test_pc_of(self):
        b = ProgramBuilder()
        b.nop()
        b.label("here")
        b.halt()
        assert b.build().pc_of("here") == 1

    def test_len_tracks_instructions(self):
        b = ProgramBuilder()
        assert len(b) == 0
        b.nop()
        b.nop()
        assert len(b) == 2


class _Regs:
    """Callable register stub for execute()."""

    def __init__(self, **values):
        self.values = {reg_index(k): v for k, v in values.items()}

    def __call__(self, index):
        return self.values.get(index, 0)


class TestExecutor:
    def setup_method(self):
        self.memory = MainMemory(capacity_bytes=1 << 20)

    def test_load(self):
        addr = self.memory.alloc_array([111, 222])
        inst = Instruction(Opcode.LD, rd=1, rs1=2, imm=8)
        res = execute(inst, 0, _Regs(x2=addr), self.memory)
        assert res.value == 222
        assert res.address == addr + 8
        assert res.next_pc == 1

    def test_store_commits(self):
        addr = self.memory.alloc_zeros(1)
        inst = Instruction(Opcode.ST, rs1=2, rs2=3)
        execute(inst, 0, _Regs(x2=addr, x3=77), self.memory)
        assert self.memory.read_word(addr) == 77

    def test_store_suppressed_when_not_committing(self):
        addr = self.memory.alloc_zeros(1)
        inst = Instruction(Opcode.ST, rs1=2, rs2=3)
        execute(inst, 0, _Regs(x2=addr, x3=77), self.memory,
                commit_stores=False)
        assert self.memory.read_word(addr) == 0

    def test_branch_taken_and_not_taken(self):
        bnez = Instruction(Opcode.BNEZ, rs1=1, target=9)
        res = execute(bnez, 3, _Regs(x1=1), self.memory)
        assert res.taken and res.next_pc == 9
        res = execute(bnez, 3, _Regs(x1=0), self.memory)
        assert not res.taken and res.next_pc == 4

    def test_beqz(self):
        beqz = Instruction(Opcode.BEQZ, rs1=1, target=7)
        assert execute(beqz, 0, _Regs(x1=0), self.memory).next_pc == 7
        assert execute(beqz, 0, _Regs(x1=5), self.memory).next_pc == 1

    def test_branch_records_source_value(self):
        bnez = Instruction(Opcode.BNEZ, rs1=1, target=9)
        res = execute(bnez, 0, _Regs(x1=42), self.memory)
        assert res.src_a == 42

    def test_jmp(self):
        res = execute(Instruction(Opcode.JMP, target=5), 0, _Regs(),
                      self.memory)
        assert res.taken and res.next_pc == 5

    def test_halt(self):
        res = execute(Instruction(Opcode.HALT), 4, _Regs(), self.memory)
        assert res.halted and res.next_pc == 4

    def test_alu_records_source_values(self):
        inst = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        res = execute(inst, 0, _Regs(x2=10, x3=20), self.memory)
        assert (res.src_a, res.src_b) == (10, 20)
        assert res.value == 30

    @pytest.mark.parametrize("op,a,b,imm,expected", [
        (Opcode.ADD, 3, 4, 0, 7),
        (Opcode.SUB, 3, 4, 0, wrap64(-1)),
        (Opcode.MUL, 5, 7, 0, 35),
        (Opcode.AND, 0b110, 0b011, 0, 0b010),
        (Opcode.OR, 0b110, 0b011, 0, 0b111),
        (Opcode.XOR, 0b110, 0b011, 0, 0b101),
        (Opcode.SLL, 1, 4, 0, 16),
        (Opcode.SRL, 16, 3, 0, 2),
        (Opcode.MIN, wrap64(-5), 3, 0, wrap64(-5)),
        (Opcode.MAX, wrap64(-5), 3, 0, 3),
        (Opcode.ADDI, 10, 0, -3, 7),
        (Opcode.ANDI, 0b1111, 0, 0b0101, 0b0101),
        (Opcode.SLLI, 3, 0, 2, 12),
        (Opcode.SRLI, 12, 0, 2, 3),
        (Opcode.MULI, 6, 0, 7, 42),
        (Opcode.LI, 0, 0, 99, 99),
        (Opcode.MV, 55, 0, 0, 55),
        (Opcode.CMP_LT, 1, 2, 0, 1),
        (Opcode.CMP_LT, 2, 1, 0, 0),
        (Opcode.CMP_LT, wrap64(-1), 0, 0, 1),   # signed compare
        (Opcode.CMP_LTU, wrap64(-1), 0, 0, 0),  # unsigned compare
        (Opcode.CMP_EQ, 5, 5, 0, 1),
        (Opcode.CMP_NE, 5, 5, 0, 0),
        (Opcode.CMP_GE, 5, 5, 0, 1),
        (Opcode.CMP_GE, 4, 5, 0, 0),
    ])
    def test_alu_compute(self, op, a, b, imm, expected):
        assert alu_compute(op, a, b, imm) == expected

    def test_alu_compute_rejects_non_alu(self):
        with pytest.raises(ValueError):
            alu_compute(Opcode.LD, 0, 0, 0)

    def test_fadd_is_plain_add(self):
        assert alu_compute(Opcode.FADD, fixed_point(1.5), fixed_point(2.25),
                           0) == fixed_point(3.75)

    def test_fmul_fixed_point(self):
        product = alu_compute(Opcode.FMUL, fixed_point(1.5),
                              fixed_point(2.0), 0)
        assert from_fixed_point(product) == pytest.approx(3.0)

    def test_fixed_point_roundtrip(self):
        assert from_fixed_point(fixed_point(3.25)) == pytest.approx(3.25)
        assert FP_SHIFT == 16

    def test_exec_result_defaults(self):
        res = ExecResult()
        assert res.value is None and res.taken is None and not res.halted
