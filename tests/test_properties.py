"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, strategies as st

from repro.branch.predictor import HybridBranchPredictor
from repro.cores.base import IssueSlots
from repro.isa.executor import alu_compute
from repro.isa.instructions import Opcode
from repro.isa.registers import to_signed64, wrap64
from repro.memory.cache import Cache, MshrPool
from repro.memory.dram import DramModel
from repro.svr.overhead import overhead_bits
from repro.svr.srf import SpeculativeRegisterFile
from repro.svr.stride_detector import StrideDetector
from repro.svr.taint_tracker import TaintTracker

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestArithmeticProperties:
    @given(u64, u64)
    def test_add_wraps_like_hardware(self, a, b):
        assert alu_compute(Opcode.ADD, a, b, 0) == (a + b) % (1 << 64)

    @given(u64, u64)
    def test_sub_is_add_inverse(self, a, b):
        s = alu_compute(Opcode.SUB, a, b, 0)
        assert alu_compute(Opcode.ADD, s, b, 0) == a

    @given(u64)
    def test_xor_self_is_zero(self, a):
        assert alu_compute(Opcode.XOR, a, a, 0) == 0

    @given(u64, u64)
    def test_min_max_partition(self, a, b):
        lo = alu_compute(Opcode.MIN, a, b, 0)
        hi = alu_compute(Opcode.MAX, a, b, 0)
        assert {lo, hi} == {a, b} or lo == hi

    @given(u64)
    def test_signed_unsigned_roundtrip(self, a):
        assert wrap64(to_signed64(a)) == a

    @given(u64, u64)
    def test_cmp_lt_trichotomy(self, a, b):
        lt = alu_compute(Opcode.CMP_LT, a, b, 0)
        gt = alu_compute(Opcode.CMP_LT, b, a, 0)
        eq = alu_compute(Opcode.CMP_EQ, a, b, 0)
        assert lt + gt + eq == 1

    @given(u64, st.integers(min_value=0, max_value=63))
    def test_shift_roundtrip_preserves_low_bits(self, a, k):
        shifted = alu_compute(Opcode.SLLI, a, 0, k)
        back = alu_compute(Opcode.SRLI, shifted, 0, k)
        assert back == (a << k) % (1 << 64) >> k


class TestIssueSlotsProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=200),
           st.integers(min_value=1, max_value=8))
    def test_issue_times_monotone_and_bounded(self, requests, width):
        slots = IssueSlots(width)
        requests = sorted(requests)
        times = [slots.allocate(r) for r in requests]
        # Monotone.
        assert all(t2 >= t1 for t1, t2 in zip(times, times[1:]))
        # Never earlier than requested.
        assert all(t >= r for t, r in zip(times, requests))
        # Bandwidth: at most `width` issues share one integer cycle.
        from collections import Counter
        per_cycle = Counter(int(t) for t in times)
        assert max(per_cycle.values()) <= width


class TestDramProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e5, allow_nan=False),
                    min_size=1, max_size=100))
    def test_completion_after_request_plus_latency(self, times):
        dram = DramModel()
        for t in times:
            assert dram.access(t) >= t + dram.latency_cycles

    @given(st.lists(st.floats(min_value=0, max_value=1e4, allow_nan=False),
                    min_size=2, max_size=60),
           st.lists(st.floats(min_value=0, max_value=200, allow_nan=False),
                    min_size=60, max_size=60))
    def test_bandwidth_never_exceeded(self, times, jitter):
        """Completions, sorted, are spaced by at least the line time.

        Arrival order is near-monotonic with bounded skew — the model's
        documented contract (skew in the simulator is bounded by one DRAM
        round trip; the prune horizon is far larger).
        """
        base = sorted(times)
        arrivals = [max(0.0, t - j) for t, j in zip(base, jitter)]
        dram = DramModel()
        completions = sorted(dram.access(t) for t in arrivals)
        for a, b in zip(completions, completions[1:]):
            assert b - a >= dram.cycles_per_line - 1e-6


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=2000), min_size=1,
                    max_size=500))
    def test_occupancy_never_exceeds_capacity(self, lines):
        cache = Cache("c", 4096, assoc=2, line_bytes=64)  # 64 lines
        for line in lines:
            cache.insert(line)
        total = sum(len(s) for s in cache._sets)
        assert total <= 64
        for cache_set in cache._sets:
            assert len(cache_set) <= 2

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                    max_size=300))
    def test_most_recent_insert_always_present(self, lines):
        cache = Cache("c", 4096, assoc=2, line_bytes=64)
        for line in lines:
            cache.insert(line)
            assert cache.contains(line)

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e4,
                                        allow_nan=False),
                              st.floats(min_value=1, max_value=500,
                                        allow_nan=False)),
                    min_size=1, max_size=50),
           st.integers(min_value=1, max_value=8))
    def test_mshr_never_oversubscribed(self, requests, entries):
        pool = MshrPool(entries)
        intervals = []
        for arrive, hold in sorted(requests):
            slot, start = pool.allocate(arrive)
            end = start + hold
            pool.release(slot, end)
            intervals.append((start, end))
        # At any request start, at most `entries` intervals overlap.
        for probe, _ in intervals:
            overlapping = sum(1 for s, e in intervals if s <= probe < e)
            assert overlapping <= entries


class TestStrideDetectorProperties:
    @given(st.integers(min_value=1, max_value=1 << 20),
           st.integers(min_value=-512, max_value=512).filter(lambda s: s != 0),
           st.integers(min_value=4, max_value=64))
    def test_constant_stride_always_detected(self, start, stride, count):
        det = StrideDetector()
        last = None
        for i in range(count):
            last = det.observe(7, start + i * stride)
        assert last.is_striding
        assert last.entry.stride == stride

    @given(st.lists(st.integers(min_value=0, max_value=1 << 30),
                    min_size=2, max_size=100))
    def test_observe_never_crashes_and_confidence_bounded(self, addrs):
        det = StrideDetector()
        for addr in addrs:
            obs = det.observe(3, addr)
            assert 0 <= obs.entry.confidence <= 3
            assert obs.entry.iteration >= 0


class TestSrfProperties:
    @given(st.lists(st.integers(min_value=1, max_value=31), min_size=1,
                    max_size=100),
           st.integers(min_value=1, max_value=8))
    def test_mapped_registers_never_exceed_entries(self, regs, entries):
        taint = TaintTracker()
        srf = SpeculativeRegisterFile(entries=entries, lanes=4)
        for reg in regs:
            srf_id = srf.allocate(reg, taint)
            if srf_id is not None:
                taint.map(reg, srf_id, 0)
            assert len(taint.mapped_registers()) <= entries
        # All mapped registers point at distinct SRF entries.
        ids = [taint.srf_of(r) for r in taint.mapped_registers()]
        assert len(ids) == len(set(ids))


class TestOverheadProperties:
    @given(st.integers(min_value=1, max_value=256),
           st.integers(min_value=1, max_value=64))
    def test_overhead_positive_and_monotone_in_srf(self, n, k):
        assert overhead_bits(n, k) > 0
        assert overhead_bits(n, k + 1) > overhead_bits(n, k)


class TestPredictorProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    def test_counters_stay_bounded(self, outcomes):
        pred = HybridBranchPredictor()
        for taken in outcomes:
            pred.predict_and_update(42, taken)
        assert pred.predictions == len(outcomes)
        assert 0 <= pred.mispredictions <= pred.predictions
        assert 0.0 <= pred.accuracy <= 1.0
