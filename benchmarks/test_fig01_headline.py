"""Fig 1: headline harmonic-mean speedup and normalised energy.

Regenerates the two panels of Fig 1 — normalised IPC and whole-system
energy for InO, IMP, OoO and SVR-8..128 — over a representative slice of
the 33-workload suite (pass the full list for the complete figure).
"""

from repro.harness import experiments
from repro.harness.report import format_table

from conftest import record, run_once

WORKLOADS = ("PR_KR", "BFS_KR", "CC_UR", "SSSP_UR", "Camel", "Kangr",
             "Randacc", "HJ2")
TECHNIQUES = ("inorder", "imp", "ooo", "svr8", "svr16", "svr32", "svr64",
              "svr128")


def test_fig1_headline(benchmark):
    out = run_once(benchmark, experiments.fig1, workloads=WORKLOADS,
                   scale="bench", techniques=TECHNIQUES)
    record("fig01_headline", format_table(
        out, title="Fig 1: harmonic-mean normalised IPC and energy "
                   "(in-order = 1.0)"))

    # Paper shapes: SVR-16 well above the in-order core and above the OoO
    # core; energy roughly halved; longer vectors help further.
    assert out["svr16"]["norm_ipc"] > 2.0
    assert out["svr16"]["norm_ipc"] > out["ooo"]["norm_ipc"]
    assert out["svr16"]["norm_ipc"] > out["imp"]["norm_ipc"]
    assert out["svr64"]["norm_ipc"] > out["svr8"]["norm_ipc"]
    assert out["svr16"]["norm_energy"] < 0.7
    assert out["svr16"]["norm_energy"] < out["ooo"]["norm_energy"]
