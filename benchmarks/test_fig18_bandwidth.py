"""Fig 18: memory-bandwidth sensitivity (12.5 to 100 GiB/s)."""

from repro.harness import experiments
from repro.harness.report import format_table

from conftest import record, run_once


def test_fig18_bandwidth(benchmark):
    out = run_once(benchmark, experiments.fig18,
                   workloads=("PR_KR", "Camel", "Kangr"), scale="bench",
                   bandwidths=(12.5, 25.0, 50.0, 100.0), lengths=(16, 64))
    rows = {cfg: {str(bw): v for bw, v in series.items()}
            for cfg, series in out.items()}
    record("fig18_bandwidth", format_table(
        rows, title="Fig 18: SVR speedup vs in-order at the same DRAM "
                    "bandwidth"))

    for length in (16, 64):
        series = out[f"svr{length}"]
        # Speedup grows with bandwidth but saturates (SVR does not fully
        # saturate the memory system on one core).
        assert series[100.0] >= series[12.5]
        low_gain = series[25.0] / series[12.5]
        high_gain = series[100.0] / series[50.0]
        assert low_gain >= high_gain - 0.05
    # SVR-64 generates more requests, so it benefits more from bandwidth.
    gain64 = out["svr64"][100.0] / out["svr64"][12.5]
    gain16 = out["svr16"][100.0] / out["svr16"][12.5]
    assert gain64 >= gain16 * 0.95
