"""Shared infrastructure for the figure-regeneration benchmarks.

Every benchmark regenerates one table/figure of the paper (see DESIGN.md's
experiment index), asserts its qualitative shape, and writes the rendered
rows/series to ``results/<figure>.txt`` so the regenerated evaluation can
be inspected after ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def record(name: str, text: str) -> None:
    """Persist one figure's regenerated rows and echo them."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}] written to {path}\n{text}")


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
