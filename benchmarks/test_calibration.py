"""Model-calibration report (validation, not a paper figure).

Regenerates the primitive-latency/bandwidth measurements that anchor the
timing model to its Table III configuration — the first thing a reviewer
of a simulator asks for.
"""

from repro.harness.calibration import calibration_report
from repro.harness.report import format_series

from conftest import record, run_once


def test_calibration_report(benchmark):
    out = run_once(benchmark, calibration_report)
    record("calibration", format_series(
        out, title="Model calibration: measured vs configured primitives"))

    assert abs(out["l1_latency_cycles"] - out["l1_configured"]) < 0.5
    assert out["dram_latency_cycles"] > out["dram_configured"]
    assert out["dram_latency_cycles"] < out["dram_configured"] * 1.6
    # The in-order core leaves the channel mostly idle (Fig 18's premise).
    assert out["bandwidth_gibps"] < out["bandwidth_configured"] * 0.5
    assert 2.0 < out["issue_width"] <= 3.0
