"""Fig 14: SPECrate 2017 surrogates — SVR must not hurt regular code."""

from repro.harness import experiments
from repro.harness.report import format_series
from repro.workloads.registry import SPEC_WORKLOADS

from conftest import record, run_once


def test_fig14_spec_overhead(benchmark):
    out = run_once(benchmark, experiments.fig14,
                   workloads=SPEC_WORKLOADS, scale="bench")
    record("fig14_spec", format_series(
        out, title="Fig 14: SVR-16 IPC normalised to in-order "
                   "(1.0 = no overhead)"))

    hmean = out.pop("H-mean")
    # Paper: ~1% average overhead, worst case (wrf) ~-3%.
    assert hmean > 0.93
    assert hmean < 1.10
    assert min(out.values()) > 0.85
    # Most components essentially unaffected.
    unaffected = sum(1 for v in out.values() if v > 0.97)
    assert unaffected >= len(out) * 0.6
