"""Fig 11: per-workload CPI for all eight techniques (lower is better)."""

from repro.harness import experiments
from repro.harness.report import format_table

from conftest import record, run_once

WORKLOADS = ("BC_UR", "BFS_KR", "BFS_UR", "CC_UR", "PR_KR", "SSSP_UR",
             "Camel", "G500", "HJ2", "HJ8", "Kangr", "NAS-CG", "NAS-IS",
             "Randacc")
TECHNIQUES = ("inorder", "imp", "ooo", "svr8", "svr16", "svr32", "svr64",
              "svr128")


def test_fig11_cpi(benchmark):
    out = run_once(benchmark, experiments.fig11, workloads=WORKLOADS,
                   scale="bench", techniques=TECHNIQUES)
    record("fig11_cpi", format_table(
        out, title="Fig 11: cycles per instruction (lower is better)"))

    for workload, row in out.items():
        # SVR-16 beats the in-order baseline everywhere (even HJ8 is
        # merely ~flat, never worse).
        assert row["svr16"] <= row["inorder"] * 1.02, workload
    # The paper's per-workload calls:
    assert out["HJ8"]["svr16"] > 0.8 * out["HJ8"]["inorder"]   # ~no speedup
    for w in ("HJ2", "HJ8", "Kangr", "Randacc"):               # IMP fails
        assert out[w]["imp"] > 0.9 * out[w]["inorder"], w
    for w in ("PR_KR", "NAS-IS"):                              # IMP wins
        assert out[w]["imp"] < out[w]["svr16"], w
    # Longer vectors keep helping on the memory-bound kernels.
    assert out["Camel"]["svr128"] < out["Camel"]["svr8"]
