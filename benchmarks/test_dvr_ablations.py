"""Section VI-D: the DVR-comparison ablations.

Three quantitative claims from the paper's DVR discussion:

* register recycling — with DVR's no-steal policy and 2 speculative
  registers, SVR-16 drops from 3.2x to 1.9x; SVR's LRU recycling keeps
  most of the speedup even at K=2;
* waiting mode — without it, lockstep re-triggering repeats almost every
  lane: SVR-16 falls to ~1.14x and SVR-64 *slows down* (0.56x);
* lockstep register-copy cost — charging a register-file copy at every
  PRM entry costs only a few percent (3.21x -> 3.16x).
"""

from repro.harness import experiments
from repro.harness.report import format_series

from conftest import record, run_once

WORKLOADS = ("PR_KR", "BFS_KR", "Camel", "Kangr", "Randacc", "HJ2")


def test_register_recycling(benchmark):
    out = run_once(benchmark, experiments.dvr_recycling,
                   workloads=WORKLOADS, scale="bench")
    record("ablation_recycling", format_series(
        out, title="Sec VI-D: SRF recycling policy (h-mean speedup)"))

    # DVR's policy with 2 registers loses a clear share of the speedup
    # (paper: 3.2x -> 1.9x; our chains are shallower — randacc/Kangaroo
    # need only two live registers — so the measured drop is milder, see
    # EXPERIMENTS.md).
    assert out["svr16-dvr-k2"] < 0.88 * out["svr16-lru-k8"]
    assert out["svr64-dvr-k2"] < 0.88 * out["svr64-lru-k8"]
    # SVR's LRU recycling needs only 2 registers to stay close to peak.
    assert out["svr16-lru-k2"] > 0.85 * out["svr16-lru-k8"]


def test_waiting_mode(benchmark):
    out = run_once(benchmark, experiments.dvr_waiting_mode,
                   workloads=WORKLOADS, scale="bench")
    record("ablation_waiting", format_series(
        out, title="Sec VI-D: waiting mode on/off (h-mean speedup)"))

    # Without waiting mode the redundant re-execution devours the benefit;
    # the longer the vector, the worse it gets (paper: SVR-16 falls to
    # 1.14x, SVR-64 to 0.56x — a slowdown, which we reproduce).
    assert out["svr16-no-waiting"] < 0.75 * out["svr16"]
    assert out["svr64-no-waiting"] < out["svr16-no-waiting"] * 1.05
    assert out["svr64-no-waiting"] < 1.0      # net slowdown at SVR-64


def test_register_copy_cost(benchmark):
    out = run_once(benchmark, experiments.register_copy_cost,
                   workloads=WORKLOADS, scale="bench", cost_cycles=16.0)
    record("ablation_regcopy", format_series(
        out, title="Sec VI-D: lockstep register-copy cost (h-mean speedup)"))

    # A small but visible cost: a few percent, not a collapse.
    assert out["svr16-regcopy"] < out["svr16"]
    assert out["svr16-regcopy"] > 0.85 * out["svr16"]
    # A free second context (DVR-style decoupling) buys only a little:
    # runahead is memory-bound, so sharing issue slots is nearly free —
    # the paper's justification for lockstep coupling.
    assert out["svr16-decoupled"] >= out["svr16"] * 0.98
    assert out["svr16-decoupled"] < out["svr16"] * 1.25
