"""Table I, quantified (extension): VR on the big core vs SVR on the
little core.

The paper compares VR/DVR/SVR only qualitatively (Table I).  With our VR
model on the OoO core (`repro.svr.vr`), the trade-off the paper argues
from becomes measurable: big-core runahead is the fastest option, but
SVR's little core delivers most of the speed at a fraction of the energy.
"""

from repro.harness import experiments
from repro.harness.report import format_table

from conftest import record, run_once

WORKLOADS = ("PR_KR", "Camel", "Kangr", "Randacc", "HJ2")


def test_table1_quantified(benchmark):
    out = run_once(benchmark, experiments.table1_quantified,
                   workloads=WORKLOADS, scale="bench")
    record("table1_quantified", format_table(
        out, title="Table I quantified: speedup vs in-order and mean "
                   "energy (nJ/instr)"))

    # VR turbocharges the OoO core...
    assert out["vr64"]["norm_ipc"] > 1.3 * out["ooo"]["norm_ipc"]
    # ...and is the fastest configuration overall...
    assert out["vr64"]["norm_ipc"] >= out["svr16"]["norm_ipc"]
    # ...but SVR's little core wins whole-system energy.
    assert out["svr16"]["nj_per_instr"] < out["vr64"]["nj_per_instr"]
    assert out["svr16"]["nj_per_instr"] < out["ooo"]["nj_per_instr"]
    assert out["svr16"]["nj_per_instr"] < out["inorder"]["nj_per_instr"]
