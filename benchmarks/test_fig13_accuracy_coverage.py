"""Fig 13: prefetch accuracy (a) and DRAM-traffic coverage (b)."""

from repro.harness import experiments
from repro.harness.report import format_table

from conftest import record, run_once

GROUPS = {
    "BFS": ("BFS_KR", "BFS_UR"),
    "CC": ("CC_UR",),
    "PR": ("PR_KR",),
    "SSSP": ("SSSP_UR",),
    "HPC-DB": ("Camel", "NAS-IS"),
}


def test_fig13a_accuracy(benchmark):
    out = run_once(benchmark, experiments.fig13a, groups=GROUPS,
                   scale="bench", per_group=2)
    record("fig13a_accuracy", format_table(
        out, title="Fig 13a: prefetch accuracy (fraction of prefetched "
                   "lines used before LLC eviction)"))

    for group, row in out.items():
        for tech, acc in row.items():
            assert 0.0 <= acc <= 1.0, (group, tech)
    # Paper: throttled SVR is extremely accurate; unthrottled (Maxlength)
    # SVR-64 over-fetches more than SVR-16.
    svr16 = [row["svr16"] for row in out.values()]
    assert sum(svr16) / len(svr16) > 0.8
    maxlen64 = [row["svr64-maxlength"] for row in out.values()]
    throttled64 = [row["svr64"] for row in out.values()]
    assert sum(throttled64) >= sum(maxlen64) - 0.05 * len(out)
    # All techniques accurate on PR (outer loop proceeds in strict
    # sequence, Section VI-C).
    assert min(out["PR"].values()) > 0.75


def test_fig13b_coverage(benchmark):
    out = run_once(benchmark, experiments.fig13b, groups=GROUPS,
                   scale="bench", per_group=2)
    record("fig13b_coverage", format_table(
        out, title="Fig 13b: DRAM traffic, normalised to in-order demand "
                   "(demand/prefetch per technique)"))

    for group, row in out.items():
        assert row["inorder.total"] == 1.0
        # With SVR most former demand misses become prefetches.
        assert row["svr16.prefetch"] > row["svr16.demand"] * 0.5, group
        # Nothing explodes the traffic by more than ~40%.
        assert row["svr16.total"] < 1.4, group
