"""Fig 3: CPI stacks of in-order vs out-of-order on the irregular suite.

The motivating figure: the in-order core spends a multiple of the OoO
core's cycles waiting on DRAM.
"""

from repro.harness import experiments
from repro.harness.report import format_table

from conftest import record, run_once


def test_fig3_cpi_stacks(benchmark):
    out = run_once(benchmark, experiments.fig3, scale="bench", per_group=2)

    rows = {}
    for group, cores in out.items():
        for core_name, stack in cores.items():
            rows[f"{group}/{core_name}"] = stack
    record("fig03_cpi_stacks", format_table(
        rows, title="Fig 3: CPI stacks (in-order vs OoO)"))

    ino = out["Avg"]["inorder"]
    ooo = out["Avg"]["ooo"]
    ino_cpi = sum(ino.values())
    ooo_cpi = sum(ooo.values())
    # Paper: in-order CPI is a multiple of OoO's, driven by DRAM stalls
    # (2.5x more DRAM-wait cycles).
    assert ino_cpi > 1.8 * ooo_cpi
    assert ino["mem-dram"] > 1.8 * ooo["mem-dram"]
    assert ino["mem-dram"] > 0.5 * ino_cpi
