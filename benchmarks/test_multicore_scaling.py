"""Section VI-E (future work): multicore SVR bandwidth-sharing study.

Fig 18 shows a single SVR core leaves DRAM bandwidth on the table; the
paper concludes multicore SVR "would give significant benefit".  This
benchmark runs 1/2/4 rate-mode copies of a memory-bound kernel per core
over a shared channel and checks that aggregate throughput scales.
"""

from repro.harness.multicore import run_multicore, scaling_study
from repro.harness.report import format_table

from conftest import record, run_once


def test_multicore_scaling(benchmark):
    out = run_once(benchmark, scaling_study, "Camel",
                   techniques=("inorder", "svr16"), core_counts=(1, 2, 4),
                   scale="bench", measure=10_000)
    rows = {tech: {str(c): v for c, v in series.items()}
            for tech, series in out.items()}
    record("multicore_scaling", format_table(
        rows, title="Sec VI-E: aggregate IPC, N cores sharing one DRAM "
                    "channel (rate mode)"))

    # Throughput scales with cores for both, and SVR's advantage holds.
    for tech, series in out.items():
        assert series[4] > 2.5 * series[1], tech
    assert out["svr16"][4] > 2.0 * out["inorder"][4]

    # SVR pushes the shared channel much harder than the baseline.
    base = run_multicore(["Camel"] * 4, "inorder", scale="bench",
                         measure=6_000)
    svr = run_multicore(["Camel"] * 4, "svr16", scale="bench",
                        measure=6_000)
    assert svr.dram_utilisation > 1.5 * base.dram_utilisation
