"""Fig 16: scalars per vector unit — performance should be flat.

The paper's point: because runahead execution is memory-bound, packing
1, 2, 4 or 8 lanes through an execute slot changes essentially nothing,
so scalar execution (no vector units at all) is sufficient.
"""

from repro.harness import experiments
from repro.harness.report import format_table

from conftest import record, run_once

WORKLOADS = ("PR_KR", "Camel", "Kangr")


def test_fig16_scalars_per_unit(benchmark):
    out = run_once(benchmark, experiments.fig16, workloads=WORKLOADS,
                   scale="bench", widths=(1, 2, 4, 8), lengths=(16, 64))
    rows = {cfg: {str(w): v for w, v in series.items()}
            for cfg, series in out.items()}
    record("fig16_vector_units", format_table(
        rows, title="Fig 16: speedup vs lanes-per-execute-slot "
                    "(flat = scalar execution suffices)"))

    for cfg, series in out.items():
        values = list(series.values())
        spread = (max(values) - min(values)) / max(values)
        assert spread < 0.12, (cfg, series)   # near-identical, as in Fig 16
