"""Fig 15: the six loop-bound prediction policies at SVR-16 and SVR-64."""

from repro.harness import experiments
from repro.harness.report import format_table

from conftest import record, run_once


def test_fig15_policies_svr16(benchmark):
    out = run_once(benchmark, experiments.fig15, length=16, scale="bench")
    record("fig15a_loop_bound_svr16", format_table(
        out, title="Fig 15a: normalised IPC per loop-bound policy (SVR-16)"))
    _check_shapes(out, length=16)


def test_fig15_policies_svr64(benchmark):
    out = run_once(benchmark, experiments.fig15, length=64, scale="bench")
    record("fig15b_loop_bound_svr64", format_table(
        out, title="Fig 15b: normalised IPC per loop-bound policy (SVR-64)"))
    _check_shapes(out, length=64)


def _check_shapes(out, length):
    hmeans = {policy: row["H-mean"] for policy, row in out.items()}
    # Every policy still beats the in-order baseline overall.
    assert min(hmeans.values()) > 1.0
    # DVR-style LBD+Wait is the weakest approach on an in-order core: the
    # bound arrives behind high-latency loads (Section VI-D).
    assert hmeans["lbd+wait"] <= min(hmeans["tournament"],
                                     hmeans["lbd+cv"]) + 0.05
    # The tournament is competitive with the best single policy.
    best = max(hmeans.values())
    assert hmeans["tournament"] > 0.85 * best
    # CV scavenging must not be worse than waiting for the branch.
    assert hmeans["lbd+cv"] >= hmeans["lbd+wait"] - 0.05
