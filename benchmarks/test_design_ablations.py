"""Design-choice ablations beyond the paper's own (DESIGN.md commitments).

Sweeps the sizing decisions Table II fixes without evaluating:

* stride-detector entries (32 in the paper) — how few suffice?
* the 256-instruction PRM timeout — what does it protect?
* the accuracy monitor — what happens without the gate on hostile code?
"""

from repro.harness.report import format_table, harmonic_mean
from repro.harness.runner import run, technique

from conftest import record, run_once

WORKLOADS = ("PR_KR", "Camel", "Kangr", "HJ2")


def _hmean_speedup(cfg, workloads=WORKLOADS, scale="bench"):
    speedups = []
    for w in workloads:
        base = run(w, "inorder", scale=scale)
        res = run(w, cfg, scale=scale)
        speedups.append(res.ipc / base.ipc)
    return harmonic_mean(speedups)


def _sweep_detector_entries():
    out = {}
    for entries in (2, 4, 8, 16, 32):
        cfg = technique("svr16", stride_detector_entries=entries)
        out[str(entries)] = {"speedup": _hmean_speedup(cfg)}
    return out


def _sweep_timeout():
    out = {}
    for timeout in (16, 64, 256, 1024):
        cfg = technique("svr16", timeout_instructions=timeout)
        out[str(timeout)] = {"speedup": _hmean_speedup(cfg)}
    return out


def test_stride_detector_sizing(benchmark):
    out = run_once(benchmark, _sweep_detector_entries)
    record("ablation_detector_entries", format_table(
        out, title="Stride-detector entries vs h-mean speedup (paper: 32)"))
    values = [row["speedup"] for row in out.values()]
    # A couple of entries already capture the hot loops; 32 is generous.
    assert values[-1] >= values[0] * 0.95
    assert out["8"]["speedup"] > 0.9 * out["32"]["speedup"]


def test_prm_timeout_sizing(benchmark):
    out = run_once(benchmark, _sweep_timeout)
    record("ablation_timeout", format_table(
        out, title="PRM timeout (instructions) vs h-mean speedup "
                   "(paper: 256)"))
    values = [row["speedup"] for row in out.values()]
    # The timeout is a safety net: performance is flat across 64..1024 on
    # loops that terminate via the HSLR anyway.
    assert max(values) / min(values) < 1.3
    assert out["256"]["speedup"] > 0.9 * max(values)


def test_accuracy_gate_value(benchmark):
    """Without the gate, Maxlength SVR-64 floods hostile workloads."""
    from repro.svr.config import LoopBoundPolicy

    def study():
        hostile = ("HJ8", "BFS_UR")
        gated = technique("svr64", policy=LoopBoundPolicy.MAXLENGTH)
        ungated = technique("svr64", policy=LoopBoundPolicy.MAXLENGTH,
                            accuracy_enabled=False)
        out = {}
        for label, cfg in (("gated", gated), ("ungated", ungated)):
            traffic = 0
            speedups = []
            for w in hostile:
                base = run(w, "inorder", scale="bench")
                res = run(w, cfg, scale="bench")
                speedups.append(res.ipc / base.ipc)
                traffic += res.dram_lines
            out[label] = {"speedup": harmonic_mean(speedups),
                          "dram_lines": float(traffic)}
        return out

    out = run_once(benchmark, study)
    record("ablation_accuracy_gate", format_table(
        out, title="Accuracy gate on hostile workloads (Maxlength SVR-64)"))
    # The gate trades a little speed for a lot less wasted DRAM traffic.
    assert out["gated"]["dram_lines"] <= out["ungated"]["dram_lines"]
