"""Table II: hardware-overhead budget across vector lengths."""

from repro.harness import experiments
from repro.harness.report import format_table
from repro.svr.overhead import overhead_bits, overhead_kib

from conftest import record, run_once


def test_table2_overhead(benchmark):
    out = run_once(benchmark, experiments.table2,
                   lengths=(8, 16, 32, 64, 128))
    record("table2_overhead", format_table(
        out, title="Table II: SVR state vs vector length"))

    # The paper's exact numbers.
    assert overhead_bits(16, 8) == 17738
    assert abs(overhead_kib(16, 8) - 2.17) < 0.01
    assert 8.0 < out["svr128"]["kib"] < 10.0
    assert out["svr16"]["kib"] < 2.5
