"""Fig 17: sensitivity to MSHR count and page-table walkers."""

from repro.harness import experiments
from repro.harness.report import format_table

from conftest import record, run_once


def test_fig17_mshr_ptw(benchmark):
    out = run_once(benchmark, experiments.fig17,
                   workloads=("PR_KR", "Randacc", "Camel"), scale="bench",
                   mshrs=(1, 2, 4, 8, 16, 32), ptws=(2, 4), lengths=(16, 64))
    rows = {cfg: {str(m): v for m, v in series.items()}
            for cfg, series in out.items()}
    record("fig17_mshr_ptw", format_table(
        rows, title="Fig 17: SVR speedup vs in-order (same MSHR/PTW "
                    "config)"))

    for length in (16, 64):
        series = out[f"svr{length}-ptw4"]
        # Even one MSHR still speeds up the system...
        assert series[1] > 1.0
        # ...but more MSHRs unlock the MLP, saturating toward the top end.
        assert series[16] > series[1] * 1.3
        gain_low = series[8] / series[1]
        gain_high = series[32] / series[16]
        assert gain_low > gain_high        # diminishing returns
    # SVR-64 keeps benefiting from MSHRs longer than SVR-16 (it can
    # overlap more misses).
    r16 = out["svr16-ptw4"][32] / out["svr16-ptw4"][8]
    r64 = out["svr64-ptw4"][32] / out["svr64-ptw4"][8]
    assert r64 >= r16 * 0.95
