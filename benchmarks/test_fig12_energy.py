"""Fig 12: whole-system energy per committed instruction (lower is better)."""

from repro.harness import experiments
from repro.harness.report import format_table

from conftest import record, run_once

WORKLOADS = ("BC_UR", "BFS_KR", "CC_UR", "PR_KR", "SSSP_UR", "Camel",
             "HJ2", "HJ8", "Kangr", "NAS-IS", "Randacc")
TECHNIQUES = ("inorder", "imp", "ooo", "svr8", "svr16", "svr64")


def test_fig12_energy(benchmark):
    out = run_once(benchmark, experiments.fig12, workloads=WORKLOADS,
                   scale="bench", techniques=TECHNIQUES)
    record("fig12_energy", format_table(
        out, title="Fig 12: whole-system energy (nJ per instruction)"))

    for workload, row in out.items():
        # SVR always beats the in-order baseline and the OoO core.
        assert row["svr16"] < row["inorder"], workload
        assert row["svr16"] < row["ooo"], workload
    # On at least the hash/masked workloads SVR also beats IMP clearly.
    for w in ("HJ2", "Kangr", "Randacc"):
        assert out[w]["svr16"] < out[w]["imp"], w
    # SSSP quirk (paper): the OoO core is not fast enough to recoup its
    # power on SSSP, so it is *less* efficient than the in-order core.
    assert out["SSSP_UR"]["ooo"] > 0.9 * out["SSSP_UR"]["inorder"]
