#!/usr/bin/env python3
"""Observability tour: capture PRM episodes and export a Perfetto trace.

Runs one workload on SVR-16 with a :class:`repro.obs.RunObservation`
attached, then shows the three outputs the observability layer gives you
for free: the run summary, the issued vector-length histogram from the
metrics registry, and a Chrome trace-event file with every piggyback-
runahead episode as a zoomable slice (open it at https://ui.perfetto.dev).

Usage::

    python examples/observe_prm.py [workload] [scale] [trace.json]

    workload  any registry name (default Camel) — try PR_KR, BFS_UR, HJ2
    scale     tiny | bench | default (default bench)
    output    Chrome trace path (default results/observe_prm.json)
"""

import sys

from repro import run, technique
from repro.obs import RunObservation, validate_trace


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "Camel"
    scale = sys.argv[2] if len(sys.argv) > 2 else "bench"
    out_path = sys.argv[3] if len(sys.argv) > 3 else "results/observe_prm.json"

    obs = RunObservation(chrome_trace=out_path)
    result = run(workload, technique("svr16"), scale=scale, obs=obs)
    print(result.summary())

    snapshot = obs.metrics_snapshot()
    hist = snapshot["svr.prm.vector_length"]
    print(f"\nissued vector lengths ({hist['count']} PRM rounds, "
          f"mean {hist['mean']:.1f} lanes):")
    peak = max(hist["buckets"].values(), default=1)
    for label, count in hist["buckets"].items():
        bar = "#" * max(1, round(30 * count / peak))
        print(f"  {label:<10} {count:>5} {bar}")

    prm_slices = sum(1 for ev in obs.trace.to_dict()["traceEvents"]
                     if ev.get("cat") == "svr" and ev.get("ph") == "X")
    problems = validate_trace(obs.trace.to_dict())
    print(f"\nChrome trace: {out_path} "
          f"({prm_slices} PRM slices, "
          f"{'well-formed' if not problems else problems})")
    print("open it at https://ui.perfetto.dev to zoom into each episode")


if __name__ == "__main__":
    main()
