#!/usr/bin/env python3
"""Quickstart: simulate one graph workload on four core configurations.

Runs PageRank over a Kronecker graph (the paper's motivating workload,
Listing 1) on the in-order baseline, the IMP prefetcher, the out-of-order
core and SVR-16, then prints CPI, speedup, energy and prefetch statistics.

Usage::

    python examples/quickstart.py [workload] [scale]

    workload  any registry name (default PR_KR) — try BFS_UR, Camel, HJ2
    scale     tiny | bench | default (default bench)
"""

import sys

from repro import run, technique


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "PR_KR"
    scale = sys.argv[2] if len(sys.argv) > 2 else "bench"

    print(f"Simulating {workload} at '{scale}' scale")
    print(f"{'technique':<10} {'CPI':>7} {'speedup':>8} {'nJ/instr':>9} "
          f"{'DRAM lines':>11} {'pf accuracy':>12}")

    baseline_ipc = None
    for name in ("inorder", "imp", "ooo", "svr16"):
        result = run(workload, technique(name), scale=scale)
        if baseline_ipc is None:
            baseline_ipc = result.ipc
        accuracy = ""
        if result.svr_accuracy is not None:
            accuracy = f"{result.svr_accuracy:12.1%}"
        elif name == "imp":
            accuracy = f"{result.hierarchy.accuracy('imp'):12.1%}"
        print(f"{name:<10} {result.cpi:7.2f} "
              f"{result.ipc / baseline_ipc:7.2f}x "
              f"{result.energy_per_instruction_nj:9.2f} "
              f"{result.dram_lines:11d} {accuracy:>12}")

    print("\nCPI stack of the in-order baseline (why SVR helps):")
    base = run(workload, technique("inorder"), scale=scale)
    for bucket, value in sorted(base.cpi_stack().items(),
                                key=lambda kv: -kv[1]):
        if value > 0.005:
            print(f"  {bucket:<10} {value:6.2f}")


if __name__ == "__main__":
    main()
