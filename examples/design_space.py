#!/usr/bin/env python3
"""Design-space exploration: SVR's area/performance trade-off.

Sweeps the two dimensions a hardware architect would size:

* vector length N (8..128) — the dominant MLP/area knob (Fig 1, Table II);
* speculative-register-file entries K — the recycling pressure knob
  (Section VI-D: SVR needs only 2, DVR's policy needs 8).

For each point it reports speedup over the in-order baseline and the exact
SRAM budget from the Table II calculator, ending with the
"performance per KiB" view the paper's abstract argues from.

Usage::

    python examples/design_space.py [workload] [scale]
"""

import sys

from repro import harmonic_mean, overhead_kib, run, technique
from repro.svr.config import RecyclingPolicy

WORKLOADS = ("PR_KR", "Camel", "Kangr")


def sweep_vector_length(workloads, scale):
    print("Vector length sweep (K = 8 SRF entries)")
    print(f"{'config':<8} {'state KiB':>10} {'speedup':>8} {'per KiB':>8}")
    for n in (8, 16, 32, 64, 128):
        speedups = []
        for w in workloads:
            base = run(w, technique("inorder"), scale=scale)
            svr = run(w, technique(f"svr{n}"), scale=scale)
            speedups.append(svr.ipc / base.ipc)
        mean = harmonic_mean(speedups)
        kib = overhead_kib(n, 8)
        print(f"svr{n:<5} {kib:10.2f} {mean:7.2f}x {mean / kib:8.2f}")


def sweep_srf_entries(workloads, scale):
    print("\nSRF sizing (N = 16), LRU recycling vs DVR renaming")
    print(f"{'K':>3} {'LRU speedup':>12} {'DVR speedup':>12}")
    for k in (1, 2, 4, 8):
        row = []
        for policy in (RecyclingPolicy.LRU, RecyclingPolicy.DVR):
            speedups = []
            for w in workloads:
                base = run(w, technique("inorder"), scale=scale)
                svr = run(w, technique("svr16", srf_entries=k,
                                       recycling=policy), scale=scale)
                speedups.append(svr.ipc / base.ipc)
            row.append(harmonic_mean(speedups))
        print(f"{k:>3} {row[0]:11.2f}x {row[1]:11.2f}x")
    print("(paper: SVR reaches peak at K=2; DVR's policy needs K=8)")


def main() -> None:
    workloads = (sys.argv[1].split(",") if len(sys.argv) > 1 else WORKLOADS)
    scale = sys.argv[2] if len(sys.argv) > 2 else "bench"
    sweep_vector_length(workloads, scale)
    sweep_srf_entries(workloads, scale)


if __name__ == "__main__":
    main()
