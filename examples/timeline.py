#!/usr/bin/env python3
"""Timeline: watch SVR overlap memory accesses, instruction by instruction.

Captures a short post-warmup instruction trace of the same workload on the
plain in-order core and on SVR-16, renders both as ASCII timelines, and
prints the aggregate comparison.  The in-order trace shows the serial
DRAM round trips (long bars, one after another); the SVR trace shows the
same loop with most loads hitting (short bars) and transient lanes (+Nsv)
doing the miss work off the critical path.

Usage::

    python examples/timeline.py [workload] [count]
"""

import sys

from repro.harness.trace import capture, render, summarize


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "Camel"
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 36

    for tech in ("inorder", "svr16"):
        records = capture(workload, tech, scale="tiny", warmup=800,
                          count=count)
        print(f"=== {workload} on {tech} ===")
        print(render(records))
        summary = summarize(records)
        span = summary["span_cycles"]
        print(f"window: {span:.0f} cycles, "
              f"{summary['dram_ops']:.0f} demand DRAM round trips, "
              f"{summary['svi_lanes']:.0f} transient lanes\n")

    plain = summarize(capture(workload, "inorder", scale="tiny",
                              warmup=800, count=400))
    svr = summarize(capture(workload, "svr16", scale="tiny", warmup=800,
                            count=400))
    print(f"over 400 instructions: {plain['span_cycles']:.0f} cycles plain "
          f"vs {svr['span_cycles']:.0f} with SVR "
          f"({plain['span_cycles'] / svr['span_cycles']:.2f}x)")


if __name__ == "__main__":
    main()
