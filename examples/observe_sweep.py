#!/usr/bin/env python3
"""Cross-process telemetry tour: a parallel sweep observed end to end.

Runs a small vector-length sweep with two fault-isolated workers and
telemetry capture on, then shows what survives the process boundary:
per-cell CPU/RSS resource samples, the deterministically merged metric
snapshot, the parent + worker span tree as one Perfetto trace (one
process track per worker pid), and a self-contained HTML dashboard.

Usage::

    python examples/observe_sweep.py [workload] [scale] [outdir]

    workload  any registry name (default Camel) — try PR_KR, BFS_UR
    scale     tiny | bench | default (default tiny)
    outdir    artifact directory (default results/observe_sweep)
"""

import sys
from pathlib import Path

from repro.exec import ExecConfig, TelemetryConfig
from repro.harness.dashboard import generate_report
from repro.harness.sweeps import SweepAxis, sweep_report
from repro.obs import validate_trace, write_trace


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "Camel"
    scale = sys.argv[2] if len(sys.argv) > 2 else "tiny"
    outdir = Path(sys.argv[3] if len(sys.argv) > 3
                  else "results/observe_sweep")
    outdir.mkdir(parents=True, exist_ok=True)
    journal = outdir / "journal.jsonl"
    journal.unlink(missing_ok=True)

    report = sweep_report(
        (workload,), "svr16",
        [SweepAxis("svr.vector_length", (8, 16, 32))],
        scale=scale,
        exec_config=ExecConfig(jobs=2, journal=str(journal),
                               telemetry=TelemetryConfig()))

    print(f"sweep over svr.vector_length on {workload} ({scale}):")
    for combo, value in report.values.items():
        shown = f"{value:.3f}" if value is not None else "FAILED"
        print(f"  vector_length={combo[0]:<4} speedup {shown}")

    res = report.resources()
    print(f"\nresources: {res['cells']} cells, cpu {res['cpu_s']:.2f}s, "
          f"max rss {res['max_rss_kib'] // 1024} MiB, "
          f"{len(res['pids'])} worker pid(s)")

    print("\nper-cell samples (shipped over the worker result pipe):")
    for telem in report.telemetry_records():
        spans = {s["name"] for s in telem.get("spans", ())}
        print(f"  pid {telem['pid']}  "
              f"{telem['workload']}/{telem['technique']:<22} "
              f"cpu {telem['cpu_s']:.3f}s  "
              f"spans {sorted(spans & {'build', 'warmup', 'measure'})}")

    merged = report.merged_metrics()
    instr = merged.get("core.instructions", {}).get("value", 0)
    print(f"\nmerged metrics: {len(merged)} series; "
          f"core.instructions (summed across workers) = {instr}")

    trace = report.trace()
    trace_path = outdir / "trace.json"
    write_trace(trace, trace_path)
    problems = validate_trace(trace)
    tracks = sum(1 for ev in trace["traceEvents"]
                 if ev.get("ph") == "M" and ev.get("name") == "process_name")
    print(f"\nmerged trace: {trace_path} ({tracks} process tracks, "
          f"{'well-formed' if not problems else problems})")

    html_path, _data = generate_report(
        journals=[journal], out_path=outdir / "report.html")
    print(f"dashboard: {html_path}")
    print("open the trace at https://ui.perfetto.dev; "
          "the dashboard is plain HTML")


if __name__ == "__main__":
    main()
