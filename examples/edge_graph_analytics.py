#!/usr/bin/env python3
"""Edge graph analytics: the paper's motivating scenario end to end.

The paper's pitch: run graph analytics on an energy-efficient in-order
edge core instead of a power-hungry OoO core.  This example runs the five
GAP kernels over a chosen input and reports, per kernel, whether SVR-16 on
the little core actually delivers OoO-class performance at in-order-class
energy — the Fig 1 story, per kernel.

Usage::

    python examples/edge_graph_analytics.py [input] [scale]

    input  KR | UR | LJN | TW | ORK (default KR)
    scale  tiny | bench | default (default bench)
"""

import sys

from repro import harmonic_mean, run, technique
from repro.workloads.registry import GAP_KERNELS


def main() -> None:
    graph_input = (sys.argv[1] if len(sys.argv) > 1 else "KR").upper()
    scale = sys.argv[2] if len(sys.argv) > 2 else "bench"

    print(f"GAP suite on the {graph_input} input ({scale} scale)")
    header = (f"{'kernel':<7} {'InO CPI':>8} {'OoO CPI':>8} {'SVR CPI':>8} "
              f"{'SVR vs InO':>11} {'SVR vs OoO':>11} "
              f"{'SVR energy':>11}")
    print(header)
    print("-" * len(header))

    vs_inorder = []
    vs_ooo = []
    energy_ratio = []
    for kernel in GAP_KERNELS:
        name = f"{kernel}_{graph_input}"
        base = run(name, technique("inorder"), scale=scale)
        ooo = run(name, technique("ooo"), scale=scale)
        svr = run(name, technique("svr16"), scale=scale)
        s_ino = svr.ipc / base.ipc
        s_ooo = svr.ipc / ooo.ipc
        e_ratio = (svr.energy_per_instruction_nj
                   / base.energy_per_instruction_nj)
        vs_inorder.append(s_ino)
        vs_ooo.append(s_ooo)
        energy_ratio.append(e_ratio)
        print(f"{kernel:<7} {base.cpi:8.2f} {ooo.cpi:8.2f} {svr.cpi:8.2f} "
              f"{s_ino:10.2f}x {s_ooo:10.2f}x {e_ratio:10.1%}")

    print("-" * len(header))
    print(f"harmonic-mean speedup vs in-order: "
          f"{harmonic_mean(vs_inorder):.2f}x  (paper: 3.2x on full suite)")
    print(f"harmonic-mean speedup vs OoO:      "
          f"{harmonic_mean(vs_ooo):.2f}x  (paper: 1.3x)")
    print(f"mean energy vs in-order:           "
          f"{sum(energy_ratio) / len(energy_ratio):.1%}  (paper: ~47%)")


if __name__ == "__main__":
    main()
