#!/usr/bin/env python3
"""Prefetcher showdown: why in-core runahead beats an L1 prefetcher.

Runs IMP and SVR-16 over access patterns of increasing hostility and shows
where each one breaks (Section VI-A / Fig 13 of the paper):

* ``NAS-IS``  — linear stride-indirect: IMP's home turf (it can overlap
  prefetching with compute; SVR cannot);
* ``Camel``   — two-level indirection: IMP covers one hop, SVR the chain;
* ``Kangr``   — hashed index: IMP learns nothing, SVR taints through the
  hash arithmetic;
* ``Randacc`` — masked index over an 8 MiB table: same, plus TLB pressure;
* ``HJ8``     — data-dependent bucket scans: divergence masks SVR's lanes
  too, leaving both with little (the paper's honest failure case).

Usage::

    python examples/prefetcher_showdown.py [scale]
"""

import sys

from repro import run, technique

CASES = (
    ("NAS-IS", "linear stride-indirect"),
    ("Camel", "two-level indirection"),
    ("Kangr", "hashed histogram index"),
    ("Randacc", "masked random access"),
    ("HJ8", "divergent bucket scans"),
)


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "bench"
    header = (f"{'workload':<9} {'pattern':<24} {'IMP speedup':>11} "
              f"{'SVR speedup':>11} {'IMP acc':>8} {'SVR acc':>8}")
    print(header)
    print("-" * len(header))
    for name, pattern in CASES:
        base = run(name, technique("inorder"), scale=scale)
        imp = run(name, technique("imp"), scale=scale)
        svr = run(name, technique("svr16"), scale=scale)
        imp_acc = imp.hierarchy.accuracy("imp")
        print(f"{name:<9} {pattern:<24} "
              f"{imp.ipc / base.ipc:10.2f}x {svr.ipc / base.ipc:10.2f}x "
              f"{imp_acc:8.1%} {svr.svr_accuracy:8.1%}")
    print("\nIMP only helps when the indirect address is a linear function "
          "of a striding load's value;\nSVR executes the real dependent "
          "chain, so arbitrary arithmetic between load and use is fine.")


if __name__ == "__main__":
    main()
