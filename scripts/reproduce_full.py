#!/usr/bin/env python3
"""Regenerate the complete evaluation at full ('default') scale.

The pytest benchmarks use representative workload slices to stay fast;
this script runs the *entire* 33-workload irregular suite (plus the 23
SPEC surrogates) across all eight techniques and writes the complete
Figs 1/11/12/14 data to ``results/full_*``.  Expect a long run — roughly
an hour of pure-Python simulation.

A full reproduction is also the natural moment to measure the simulator
itself, so the script finishes by running the ``repro.bench``
self-benchmarks and appending a ``BENCH_*.json`` trajectory point at the
repository root (``--no-bench`` skips it).

Usage::

    python scripts/reproduce_full.py [--scale bench|default] [--out DIR]
                                     [--no-bench]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.harness import experiments
from repro.harness.report import format_series, format_table, harmonic_mean
from repro.harness.runner import MAIN_TECHNIQUES
from repro.workloads.registry import IRREGULAR_WORKLOADS, SPEC_WORKLOADS


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="default",
                        choices=("tiny", "bench", "default"))
    parser.add_argument("--out", default="results")
    parser.add_argument("--no-bench", action="store_true",
                        help="skip the closing self-benchmark / "
                             "BENCH_*.json trajectory point")
    args = parser.parse_args()
    out_dir = Path(args.out)
    out_dir.mkdir(exist_ok=True)

    started = time.time()

    def save(name: str, text: str) -> None:
        path = out_dir / f"full_{name}.txt"
        path.write_text(text + "\n")
        print(f"[{time.time() - started:7.0f}s] wrote {path}")

    print(f"Full reproduction at '{args.scale}' scale "
          f"({len(IRREGULAR_WORKLOADS)} irregular + "
          f"{len(SPEC_WORKLOADS)} SPEC workloads, "
          f"{len(MAIN_TECHNIQUES)} techniques)")

    fig11 = experiments.fig11(workloads=IRREGULAR_WORKLOADS,
                              scale=args.scale)
    save("fig11_cpi", format_table(
        fig11, title="Fig 11 (full): CPI per workload"))

    fig12 = experiments.fig12(workloads=IRREGULAR_WORKLOADS,
                              scale=args.scale)
    save("fig12_energy", format_table(
        fig12, title="Fig 12 (full): nJ per instruction"))

    # Fig 1 aggregates derived from the full Fig 11/12 matrices.
    fig1_rows = {}
    for tech in MAIN_TECHNIQUES:
        speedups = [fig11[w]["inorder"] / fig11[w][tech]
                    for w in IRREGULAR_WORKLOADS]
        energy = [fig12[w][tech] / fig12[w]["inorder"]
                  for w in IRREGULAR_WORKLOADS]
        fig1_rows[tech] = {
            "norm_ipc": harmonic_mean(speedups),
            "norm_energy": sum(energy) / len(energy),
        }
    save("fig01_headline", format_table(
        fig1_rows, title="Fig 1 (full 33-workload suite)"))

    fig14 = experiments.fig14(workloads=SPEC_WORKLOADS, scale=args.scale)
    save("fig14_spec", format_series(
        fig14, title="Fig 14 (full): SPEC surrogate overhead"))

    if not args.no_bench:
        # Close with a self-benchmark so every full reproduction leaves
        # a performance-trajectory point behind (see docs/observability.md).
        from repro.bench import run_benchmarks, write_artifact

        bench_path = write_artifact(run_benchmarks(), root=".")
        print(f"[{time.time() - started:7.0f}s] wrote {bench_path} "
              "(simulator self-benchmark)")

    print(f"done in {time.time() - started:.0f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
