#!/usr/bin/env python
"""CI gate: the SoA lane engine must not change simulated behaviour.

Runs every cell of the pinned equivalence matrix
(:data:`repro.workloads.expectations.SOA_EQUIVALENCE_CELLS`) at tiny
scale under ``lane_engine='scalar'`` and ``lane_engine='soa'`` and
demands byte-identical ``SimResult.to_dict()`` exports.  Any divergence
prints a per-cell diff summary and exits non-zero.

This is the same contract ``tests/test_svr_soa_equiv.py`` pins, packaged
without a pytest dependency so the bench-smoke CI job (which only
installs numpy) can run it.

Usage::

    PYTHONPATH=src python scripts/soa_equivalence_gate.py
"""

from __future__ import annotations

import json
import sys

from repro.harness.runner import run, technique
from repro.workloads.expectations import SOA_EQUIVALENCE_CELLS


def _export(workload: str, tech: str, engine: str) -> dict:
    result = run(workload, technique(tech, lane_engine=engine), scale="tiny")
    return result.to_dict()


def _diff_keys(a: dict, b: dict, prefix: str = "") -> list[str]:
    """Dotted paths whose values differ between two nested dict exports."""
    out: list[str] = []
    for key in sorted(set(a) | set(b)):
        path = f"{prefix}{key}"
        va, vb = a.get(key), b.get(key)
        if isinstance(va, dict) and isinstance(vb, dict):
            out.extend(_diff_keys(va, vb, prefix=f"{path}."))
        elif va != vb:
            out.append(f"{path}: scalar={va!r} soa={vb!r}")
    return out


def main() -> int:
    failures = 0
    for workload, tech in SOA_EQUIVALENCE_CELLS:
        scalar = _export(workload, tech, "scalar")
        soa = _export(workload, tech, "soa")
        if json.dumps(scalar, sort_keys=True) == json.dumps(soa,
                                                            sort_keys=True):
            print(f"ok: {workload}/{tech} byte-identical across engines")
            continue
        failures += 1
        print(f"FAIL: {workload}/{tech} diverges between engines:")
        for line in _diff_keys(scalar, soa)[:20]:
            print(f"  {line}")
    if failures:
        print(f"{failures}/{len(SOA_EQUIVALENCE_CELLS)} cells diverged")
        return 1
    print(f"all {len(SOA_EQUIVALENCE_CELLS)} cells byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
